(** Bidirectional abstract interpretation over a product domain of
    symbolic-image intervals.

    An interval [⟨Î⁻, Î⁺⟩] stands for every symbolic image Î with
    Î⁻ ⊆ Î ⊆ Î⁺.  {!Goal.t} is exactly this domain read {e backward}
    (constraints on what a subprogram must produce), and the collapsed
    constants of partial evaluation are its exact elements read
    {e forward} (what a complete subtree does produce).  This module
    iterates the two directions to a fixpoint over one candidate:

    - {e forward}, bottom-up: complete subtrees contribute [⟨v, v⟩];
      holes contribute their current backward interval; operator nodes
      combine children by their abstract semantics (Union joins bounds,
      Intersect meets them, Complement flips them, Find/Filter are
      bounded by the precomputed reach of their parameterization).  Each
      node's forward bounds are met with its backward interval — an
      empty meet kills the candidate.
    - {e backward}, top-down: each node pushes its (refined) interval
      into its children, e.g. once [k-1] children of a [Union] are
      resolved, the last hole's goal tightens from [{under = ∅}] to
      [{under = goal.under \ ⋃ siblings.over}].

    The domain is a product of three refinements over the plain global
    interval of PR 6:

    - {e per-image planes}: the demo images partition the universe and
      every DSL operator is image-local (spatial relations and
      containment never cross images), so each node carries one interval
      per image, met independently.  A candidate dies as soon as it is
      infeasible on {e any single} demo image, and [Find]/[Filter] are
      bounded by per-image reach sets instead of their whole-universe
      union.
    - {e cardinality bounds}: each plane also tracks [⟨|e|min, |e|max⟩]
      with its own transfer functions ([Find] yields at most one output
      per input; a [Union] of k children supplies at most Σ|cᵢ|max
      objects; [Complement] reflects the bounds within the image mask),
      reduced against the bitset interval both ways — counting kills the
      bitsets cannot express, e.g. a Union of singleton-bounded holes
      chasing a larger goal.
    - {e all-hole tightening}: on a feasible fixpoint, {e every} hole
      whose final interval beats its annotation is recorded in the
      candidate root's tight map ({!Partial.set_tight}), and holes seed
      their backward intervals from the map inherited from the parent
      candidate ({!Partial.inherit_tight}) — so tightening survives
      expansion and applies to whichever hole is filled next.

    Both directions only ever shrink intervals (every update is a meet),
    so the iteration is monotone in a finite lattice and terminates; the
    [max_iterations] cap merely bounds the work per candidate and is
    sound to stop at any round.  Cap saturations are counted so they are
    visible in prune diagnostics. *)

val meet : Goal.t -> Goal.t -> Goal.t
(** Interval meet: [⟨a⁻ ∪ b⁻, a⁺ ∩ b⁺⟩]. *)

val feasible : Goal.t -> bool
(** A non-empty interval: [under ⊆ over]. *)

val default_max_iterations : int

val max_iterations_from_env : unit -> int
(** [default_max_iterations], overridable via the [IMAGEEYE_ABSINT_ITERS]
    environment variable.  Exits loudly (status 2) on a malformed or
    non-positive value rather than silently running with the default. *)

val max_planes : int
(** Above this many images the analysis stops tracking one plane per
    image (per-image bookkeeping would dominate).  With [demo_images] it
    then keeps a plane per demonstrated image plus one residual plane;
    without, it falls back to a single whole-universe plane. *)

type env = {
  u : Imageeye_symbolic.Universe.t;
  reach_find : Pred.t -> Func.t -> Imageeye_symbolic.Simage.t;
      (** largest possible output of [Find(_, p, f)] on the input image *)
  reach_filter : Pred.t -> Imageeye_symbolic.Simage.t;
      (** largest possible output of [Filter(_, p)] *)
  max_iterations : int;
  cardinality : bool;  (** track [⟨|e|min, |e|max⟩] per plane *)
  masks : Imageeye_util.Bitset.t array;
      (** one object mask per plane; a single full mask when per-image
          refinement is off or the universe has too many images *)
  msizes : int array;  (** cardinality of each mask *)
  find_cache : (Pred.t * Func.t * int, Imageeye_util.Bitset.t) Hashtbl.t;
  filter_cache : (Pred.t * int, Imageeye_util.Bitset.t) Hashtbl.t;
      (** per-plane restrictions of the reach tables, filled lazily *)
  mutable analyses : int;  (** candidates analyzed *)
  mutable iterations : int;  (** total forward-backward rounds *)
  mutable tightened : int;  (** analyses that tightened at least one hole *)
  mutable cap_hits : int;
      (** analyses stopped by [max_iterations] before the fixpoint *)
  mutable card_kills : int;
      (** infeasibilities proved by the cardinality domain alone *)
}
(** Per-search analysis environment: reach tables shared with the
    engine's vocabulary facts, plus plain (single-Domain) counters the
    engine folds into [stats.prune_counts]. *)

val make_env :
  ?max_iterations:int ->
  ?per_image:bool ->
  ?cardinality:bool ->
  ?demo_images:int list ->
  ?reach_find:(Pred.t -> Func.t -> Imageeye_symbolic.Simage.t) ->
  ?reach_filter:(Pred.t -> Imageeye_symbolic.Simage.t) ->
  Imageeye_symbolic.Universe.t ->
  env
(** Reach functions default to the full universe (sound, uninformative);
    [per_image] and [cardinality] default to on.  With [per_image], a
    universe of 2..{!max_planes} images gets one plane per image; a
    larger universe gets one plane per image of [demo_images] (the
    demonstrated raw images of the spec, deduplicated, unknown ids
    ignored) plus a residual plane over the rest — each mask is still a
    union of whole images, so the product-domain soundness argument is
    unchanged.  A larger universe without [demo_images] keeps the single
    whole-universe plane. *)

type result = Feasible | Infeasible

val analyze : env -> Partial.t -> Form.t -> result
(** [analyze env root form] runs the fixpoint on one candidate, given its
    partially evaluated form (whose [Const] nodes supply the forward
    values — the analysis never evaluates anything itself).  [Infeasible]
    means no completion of [root] can satisfy every goal annotation, so
    the candidate is sound to discard even in multi-solution searches.
    On [Feasible], every strictly tightened hole goal is recorded via
    {!Partial.set_tight}; hole backward intervals are seeded from the
    tight map already present on [root] (inherited from the candidate it
    was expanded from).  A form whose shape cannot be mirrored (e.g.
    collapse was off) is admitted unanalyzed. *)
