(** Bidirectional abstract interpretation over the interval domain of
    symbolic images.

    An interval [⟨Î⁻, Î⁺⟩] stands for every symbolic image Î with
    Î⁻ ⊆ Î ⊆ Î⁺.  {!Goal.t} is exactly this domain read {e backward}
    (constraints on what a subprogram must produce), and the collapsed
    constants of partial evaluation are its exact elements read
    {e forward} (what a complete subtree does produce).  This module
    iterates the two directions to a fixpoint over one candidate:

    - {e forward}, bottom-up: complete subtrees contribute [⟨v, v⟩];
      holes contribute their current backward interval; operator nodes
      combine children by their abstract semantics (Union joins bounds,
      Intersect meets them, Complement flips them, Find/Filter are
      bounded by the precomputed reach of their parameterization).  Each
      node's forward bounds are met with its backward interval — an
      empty meet kills the candidate.
    - {e backward}, top-down: each node pushes its (refined) interval
      into its children, e.g. once [k-1] children of a [Union] are
      resolved, the last hole's goal tightens from [{under = ∅}] to
      [{under = goal.under \ ⋃ siblings.over}].

    Both directions only ever shrink intervals (every update is a meet),
    so the iteration is monotone in a finite lattice and terminates; the
    [max_iterations] cap merely bounds the work per candidate and is
    sound to stop at any round.

    When the fixpoint is feasible, the tightened goal of the candidate's
    leftmost hole is recorded on the candidate root ({!Partial.set_tight})
    so the next expansion of that hole — grammar instantiation filtering,
    child-goal inference, and {!Bank_registry.close_hole} — uses the
    tighter window. *)

val meet : Goal.t -> Goal.t -> Goal.t
(** Interval meet: [⟨a⁻ ∪ b⁻, a⁺ ∩ b⁺⟩]. *)

val feasible : Goal.t -> bool
(** A non-empty interval: [under ⊆ over]. *)

val default_max_iterations : int

type env = {
  u : Imageeye_symbolic.Universe.t;
  reach_find : Pred.t -> Func.t -> Imageeye_symbolic.Simage.t;
      (** largest possible output of [Find(_, p, f)] on the input image *)
  reach_filter : Pred.t -> Imageeye_symbolic.Simage.t;
      (** largest possible output of [Filter(_, p)] *)
  max_iterations : int;
  mutable analyses : int;  (** candidates analyzed *)
  mutable iterations : int;  (** total forward-backward rounds *)
  mutable tightened : int;  (** analyses that tightened the leftmost hole *)
}
(** Per-search analysis environment: reach tables shared with the
    engine's vocabulary facts, plus plain (single-Domain) counters the
    engine folds into [stats.prune_counts]. *)

val make_env :
  ?max_iterations:int ->
  ?reach_find:(Pred.t -> Func.t -> Imageeye_symbolic.Simage.t) ->
  ?reach_filter:(Pred.t -> Imageeye_symbolic.Simage.t) ->
  Imageeye_symbolic.Universe.t ->
  env
(** Reach functions default to the full universe (sound, uninformative). *)

type result = Feasible | Infeasible

val analyze : env -> Partial.t -> Form.t -> result
(** [analyze env root form] runs the fixpoint on one candidate, given its
    partially evaluated form (whose [Const] nodes supply the forward
    values — the analysis never evaluates anything itself).  [Infeasible]
    means no completion of [root] can satisfy every goal annotation, so
    the candidate is sound to discard even in multi-solution searches.
    On [Feasible], a strictly tightened leftmost-hole goal is recorded
    via {!Partial.set_tight}.  A form whose shape cannot be mirrored
    (e.g. collapse was off) is admitted unanalyzed. *)
