(** The ImageEye synthesis algorithm (Section 5).

    {!synthesize_extractor} is the SynthesizeExtractor procedure of Fig. 9:
    top-down enumerative search over partial programs, ordered by AST size
    then depth, pruning with goal-directed partial evaluation (Fig. 12) and
    equivalence reduction by term rewriting (Figs. 13-14).

    {!synthesize} is the top-level Synthesize procedure of Fig. 8: it
    splits a demonstration specification into one PBE problem per action
    and learns an extractor for each — optionally in parallel on a
    {!Imageeye_util.Domainpool}.

    These entry points are thin wrappers over the layered engine
    ({!Engine_search}: generic worklist scheduler, composable pruning
    pipeline, search-event instrumentation).  The three pruning
    techniques can be disabled independently through {!config}, which the
    engine turns into pruning-pipeline construction — that is how the
    Section 7.4 ablation study is expressed. *)

type config = Engine_search.config = {
  goal_inference : bool;  (** Section 5.3 pruning *)
  partial_eval : bool;  (** collapse complete subtrees before rewriting *)
  equiv_reduction : bool;  (** Section 5.5 term rewriting *)
  fwd_bwd : bool;
      (** bidirectional abstract interpretation (see
          {!Engine_search.config}): iterated forward-backward interval
          propagation on every incomplete candidate; solution-preserving
          (it only discards candidates no completion of which can satisfy
          the goal annotations), on by default *)
  absint_per_image : bool;
      (** per-demo-image interval planes in the fwd-bwd analysis (see
          {!Engine_search.config}); solution-preserving, on by default *)
  absint_cardinality : bool;
      (** per-plane cardinality bounds in the fwd-bwd analysis (see
          {!Engine_search.config}); solution-preserving, on by default *)
  eval_cache : bool;
      (** memoized incremental partial evaluation (see
          {!Engine_search.config}); semantics-preserving, on by default *)
  value_bank : bool;
      (** hybrid bottom-up/top-down search (see {!Engine_search.config});
          semantics-preserving for single-solution searches, on by
          default; {!synthesize_extractors} with [count > 1] ignores it *)
  optimality : bool;
      (** cost-directed optimal synthesis (off by default):
          {!synthesize_extractor} dispatches to {!Optimal.search} and
          returns the minimal consistent extractor under the {!Cost}
          order instead of the first one found — same solved set under
          the same budget (a timeout with an incumbent still succeeds
          with it), smaller/more-general programs.
          {!synthesize_extractors} ignores it (its callers want the
          enumeration order, not one optimum) *)
  optimal_frontier : int;
      (** candidates generated without an incumbent improvement before
          the optimal search settles (default 200k); higher explores
          deeper for cheaper programs at proportional search cost *)
  timeout_s : float;  (** monotonic-clock budget per extractor search *)
  max_expansions : int;  (** hard cap on worklist pops *)
  max_size : int;  (** partial programs above this size are not enqueued *)
  max_operands : int;  (** maximum arity of Union/Intersect (paper uses
                           variadic operators; every Appendix B ground
                           truth fits within 3) *)
  age_thresholds : int list;  (** constants for BelowAge/AboveAge *)
}

val default_config : config
(** All pruning on, 120 s timeout, arity 3, age threshold 18. *)

val ablations : (string * (config -> config)) list
(** {!Engine_search.ablations}: the shared named fig16 ablation table. *)

type stats = Engine_search.stats = {
  popped : int;  (** worklist entries dequeued *)
  enqueued : int;  (** partial programs added to the worklist *)
  pruned_infeasible : int;  (** rejected by partial evaluation (⊥) *)
  pruned_reducible : int;  (** rejected by term rewriting *)
  nodes : int;  (** AST nodes evaluated (see {!Engine_search.stats}) *)
  elapsed_s : float;
  prune_counts : (string * int) list;
      (** per-pass prune attribution, sorted by pass name (see
          {!Engine_search.stats}) *)
}

val empty_stats : stats

val add_stats : stats -> stats -> stats

type 'a outcome =
  | Success of 'a * stats
  | Timeout of stats
  | Exhausted of stats
      (** the bounded search space was exhausted without a solution *)

val synthesize_extractor :
  ?config:config ->
  ?demo_images:int list ->
  Imageeye_symbolic.Universe.t ->
  Imageeye_symbolic.Simage.t ->
  Lang.extractor outcome
(** [synthesize_extractor u i_out] searches for an extractor [e] with
    ⟦e⟧(Î_in) = [i_out], where Î_in is the full universe [u].
    [demo_images] (the demonstrated raw-image ids, when the search comes
    from a spec) keeps per-image abstract-interpretation planes alive on
    universes beyond {!Absint.max_planes} images — the spec-level entry
    points below pass it automatically. *)

val synthesize_extractors :
  ?config:config ->
  ?demo_images:int list ->
  count:int ->
  Imageeye_symbolic.Universe.t ->
  Imageeye_symbolic.Simage.t ->
  Lang.extractor list * stats
(** Like {!synthesize_extractor} but keeps searching after the first
    solution, returning up to [count] syntactically distinct extractors
    that all match the examples, in the worklist's size-then-depth order.
    All returned extractors agree on the input image but may disagree on
    unseen images — the ambiguity that drives active example selection. *)

val synthesize_ranked :
  ?config:config ->
  Edit.Spec.t ->
  (Lang.action * Lang.extractor list) list outcome
(** Cost-ranked spec-consistent candidates, one non-empty list per
    demonstrated action, cheapest first under {!Cost.compare_extractors}.
    In optimality mode the list is the optimal search's whole enumerated
    solution set (every consistent extractor it admitted); otherwise it
    is the single first-consistent extractor.  Callers whose real
    consistency check is stronger than the spec — the interaction loop
    validates candidates against the full dataset — walk each list
    cheapest-first and keep the first survivor. *)

val synthesize :
  ?config:config ->
  ?pool:Imageeye_util.Domainpool.t ->
  Edit.Spec.t ->
  Lang.program outcome
(** Top-level synthesis from demonstrations: one extractor per action that
    appears in the spec.  The spec's universe should contain exactly the
    objects of the demonstrated images (build a fresh universe for them).
    Statistics are summed over the per-action searches.

    With [pool] (size >= 2) the per-action searches run on the Domain
    pool; per-action outcomes are folded in action order, so under a
    deterministic budget ([max_expansions]) the result (program and
    stats, except wall-clock) is identical to sequential mode.  A
    binding [timeout_s] can cut differently when domains contend for
    cores. *)
