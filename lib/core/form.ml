module Simage = Imageeye_symbolic.Simage

type t =
  | Hole
  | Const of Simage.t
  | All
  | Is of Pred.t
  | Complement of t
  | Union of t list
  | Intersect of t list
  | Find of t * Pred.t * Func.t
  | Filter of t * Pred.t

(* Rank orders constructors: constants first, holes last, so that in a
   canonical commutative operator the concrete operands precede the still
   unknown ones. *)
let rank = function
  | Const _ -> 0
  | All -> 1
  | Is _ -> 2
  | Complement _ -> 3
  | Union _ -> 4
  | Intersect _ -> 5
  | Find _ -> 6
  | Filter _ -> 7
  | Hole -> 8

let rec compare a b =
  match (a, b) with
  | Const x, Const y -> Simage.compare x y
  | All, All | Hole, Hole -> 0
  | Is p, Is q -> Pred.compare p q
  | Complement x, Complement y -> compare x y
  | Union xs, Union ys | Intersect xs, Intersect ys -> compare_list xs ys
  | Find (x, p, f), Find (y, q, g) ->
      let c = compare x y in
      if c <> 0 then c
      else
        let c = Pred.compare p q in
        if c <> 0 then c else Func.compare f g
  | Filter (x, p), Filter (y, q) ->
      let c = compare x y in
      if c <> 0 then c else Pred.compare p q
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs ys

let equal a b = compare a b = 0

let rec hash = function
  | Hole -> 3
  | Const v -> (7 * Simage.hash v) + 1
  | All -> 11
  | Is p -> (13 * Hashtbl.hash p) + 2
  | Complement t -> (17 * hash t) + 5
  | Union ts -> List.fold_left (fun acc t -> (acc * 31) + hash t) 19 ts
  | Intersect ts -> List.fold_left (fun acc t -> (acc * 37) + hash t) 23 ts
  | Find (t, p, f) -> (29 * hash t) + (41 * Hashtbl.hash p) + Hashtbl.hash f
  | Filter (t, p) -> (43 * hash t) + (47 * Hashtbl.hash p) + 7

let rec pp fmt = function
  | Hole -> Format.pp_print_string fmt "?"
  | Const img -> Format.fprintf fmt "Const%a" Simage.pp img
  | All -> Format.pp_print_string fmt "All"
  | Is p -> Format.fprintf fmt "Is(%a)" Pred.pp p
  | Complement t -> Format.fprintf fmt "Complement(%a)" pp t
  | Union ts -> Format.fprintf fmt "Union(%a)" pp_list ts
  | Intersect ts -> Format.fprintf fmt "Intersect(%a)" pp_list ts
  | Find (t, p, f) -> Format.fprintf fmt "Find(%a, %a, %a)" pp t Pred.pp p Func.pp f
  | Filter (t, p) -> Format.fprintf fmt "Filter(%a, %a)" pp t Pred.pp p

and pp_list fmt ts =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp fmt ts

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
