(* The cost order for optimal-extractor synthesis (see Optimal).

   Four observable axes are folded over the predicates and structure of
   an extractor; the scalar [total] weighs them so that AST size
   dominates and the remaining axes break ties between same-size
   programs.  Keeping size dominant also keeps the incumbent search
   cheap: once a consistent program of size s is known, no candidate
   beyond roughly size s + 2 can beat it, so the cost bound confines the
   post-incumbent frontier to a thin band of tiers. *)

type t = { size : int; lattice : int; noise : int; generality : int }

let zero = { size = 0; lattice = 0; noise = 0; generality = 0 }

(* Depth of a predicate in the specialization lattice rooted at the
   object-kind tests: kind tests (depth 1) generalize attribute and
   class tests (depth 2), which generalize exact-identity matchers
   (depth 3) — a [Word] names one string, a [Face] one individual. *)
let lattice_depth = function
  | Pred.Face_object | Pred.Text_object -> 1
  | Pred.Smiling | Pred.Eyes_open | Pred.Mouth_open | Pred.Below_age _
  | Pred.Above_age _ | Pred.Phone_number | Pred.Price | Pred.Object _ ->
      2
  | Pred.Face _ | Pred.Word _ -> 3

(* How exposed a predicate is to the RQ5 noise channels (Noise.profile):
   kind tests are read straight off the detector and never flip;
   attribute tests ride the attr-flip channel and face identities the
   face-id-confusion channel (weight 2, the channels with the highest
   default rates weighted by blast radius); object classes and OCR-backed
   text tests sit on the lower-rate confusion/error channels (weight 1). *)
let noise_weight = function
  | Pred.Face_object | Pred.Text_object -> 0
  | Pred.Object _ | Pred.Word _ | Pred.Phone_number | Pred.Price -> 1
  | Pred.Smiling | Pred.Eyes_open | Pred.Mouth_open | Pred.Below_age _
  | Pred.Above_age _ | Pred.Face _ ->
      2

(* Exact-identity matchers name one specific entity or string, the
   signature of an extractor overfit to the demonstration images. *)
let exact_identity = function Pred.Face _ | Pred.Word _ -> true | _ -> false

let add_pred acc p =
  {
    acc with
    lattice = acc.lattice + lattice_depth p;
    noise = acc.noise + noise_weight p;
    generality = (acc.generality + if exact_identity p then 1 else 0);
  }

let rec fold acc (e : Lang.extractor) =
  match e with
  | Lang.All -> acc
  | Lang.Is p -> add_pred acc p
  | Lang.Complement e1 -> fold acc e1
  | Lang.Union es | Lang.Intersect es -> List.fold_left fold acc es
  | Lang.Find (e1, p, _) | Lang.Filter (e1, p) -> fold (add_pred acc p) e1

let of_extractor e = { (fold zero e) with size = Lang.size e }

let add a b =
  {
    size = a.size + b.size;
    lattice = a.lattice + b.lattice;
    noise = a.noise + b.noise;
    generality = a.generality + b.generality;
  }

let of_program prog =
  List.fold_left (fun acc (e, _action) -> add acc (of_extractor e)) zero prog

let total c = (16 * c.size) + (4 * c.noise) + (2 * c.lattice) + c.generality

(* The documented total order: scalar total first, then the axes in
   fixed precedence (size, noise, lattice, generality).  Distinct costs
   never compare equal, so any two programs either differ in cost or are
   separated by the final syntactic tie-break in [compare_extractors]. *)
let compare a b =
  let c = Int.compare (total a) (total b) in
  if c <> 0 then c
  else
    let c = Int.compare a.size b.size in
    if c <> 0 then c
    else
      let c = Int.compare a.noise b.noise in
      if c <> 0 then c
      else
        let c = Int.compare a.lattice b.lattice in
        if c <> 0 then c else Int.compare a.generality b.generality

let compare_extractors a b =
  let c = compare (of_extractor a) (of_extractor b) in
  if c <> 0 then c else Lang.compare_extractor a b

(* Admissible lower bound over a partial program: concrete nodes
   contribute exactly what they will contribute in any completion, and a
   hole contributes its minimal possible footprint — size 1 (the
   smallest completion, [All], has size 1) and zero on the other axes
   ([All] names no predicate).  Every axis only grows as holes are
   filled and every weight in [total] is positive, so for any completion
   e of p: [compare (lower_bound p) (of_extractor e) <= 0]. *)
let rec fold_partial acc (p : Partial.t) =
  match p.Partial.node with
  | Partial.Hole | Partial.All -> acc
  | Partial.Is pr -> add_pred acc pr
  | Partial.Complement q -> fold_partial acc q
  | Partial.Union qs | Partial.Intersect qs -> List.fold_left fold_partial acc qs
  | Partial.Find (q, pr, _) | Partial.Filter (q, pr) ->
      fold_partial (add_pred acc pr) q

let lower_bound p = { (fold_partial zero p) with size = Partial.size p }

let pp fmt c =
  Format.fprintf fmt "{total=%d; size=%d; lattice=%d; noise=%d; generality=%d}"
    (total c) c.size c.lattice c.noise c.generality

let to_string c = Format.asprintf "%a" pp c
