module Simage = Imageeye_symbolic.Simage
open Peval.Form

(* Atomic so Domain-parallel searches don't lose ticks. *)
let checks = Atomic.make 0

let count_checks () = Atomic.get checks

let rec has_hole = function
  | Hole -> true
  | Const _ | All | Is _ -> false
  | Complement t | Find (t, _, _) | Filter (t, _) -> has_hole t
  | Union ts | Intersect ts -> List.exists has_hole ts

(* Structural equality that never equates terms containing holes: two holes
   may be completed differently, so they match no rewrite rule. *)
let definitely_equal a b = (not (has_hole a)) && (not (has_hole b)) && equal a b

let rec sorted_operands = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> compare a b <= 0 && sorted_operands rest

let exists_pair p xs =
  List.exists (fun (i, a) -> List.exists (fun (j, b) -> i <> j && p a b) xs) xs

let indexed xs = List.mapi (fun i x -> (i, x)) xs

let const_value = function Const v -> Some v | _ -> None

(* Domination among constant operands (Example 5.11): for Union, an operand
   that is a subset of another is redundant; for Intersect, a superset is. *)
let const_domination xs =
  exists_pair
    (fun a b ->
      match (const_value a, const_value b) with
      | Some va, Some vb -> Simage.subset va vb
      | _ -> false)
    (indexed xs)

let is_union = function Union _ -> true | _ -> false
let is_intersect = function Intersect _ -> true | _ -> false
let is_complement = function Complement _ -> true | _ -> false

(* Absorption: some operand also occurs inside a sibling operand of the dual
   operator, e.g. Union(A, Intersect(A, B)). *)
let absorption ~dual_members xs =
  let member_of a b =
    match dual_members b with
    | Some members -> List.exists (definitely_equal a) members
    | None -> false
  in
  exists_pair member_of (indexed xs)

(* Distribution: two operands of the dual operator share a common member,
   e.g. Union(Intersect(A, B), Intersect(A, C)). *)
let distribution ~dual_members xs =
  let duals = List.filter_map dual_members xs in
  let share ms ms' = List.exists (fun a -> List.exists (definitely_equal a) ms') ms in
  let rec pairs = function
    | [] -> false
    | ms :: rest -> List.exists (share ms) rest || pairs rest
  in
  pairs duals

let intersect_members = function Intersect ms -> Some ms | _ -> None
let union_members = function Union ms -> Some ms | _ -> None

(* Identical hole-free operands: idempotence (the syntactic-mode analogue of
   constant domination). *)
let syntactic_idempotence xs = exists_pair definitely_equal (indexed xs)

let rule_matches t =
  match t with
  | Hole | Const _ | All | Is _ -> false
  | Complement (Complement _) -> true
  | Complement _ -> false
  | Union xs ->
      List.exists is_union xs (* associativity: flattened form is smaller *)
      || (not (sorted_operands xs)) (* commutativity: canonical order only *)
      || const_domination xs
      || syntactic_idempotence xs
      || absorption ~dual_members:intersect_members xs
      || List.for_all is_complement xs (* De Morgan *)
      || distribution ~dual_members:intersect_members xs
  | Intersect xs ->
      List.exists is_intersect xs
      || (not (sorted_operands xs))
      || const_domination xs
      || syntactic_idempotence xs
      || absorption ~dual_members:union_members xs
      || List.for_all is_complement xs
      || distribution ~dual_members:union_members xs
  | Find _ | Filter _ -> false

(* The Rec rule of Fig. 14: a term is reducible if any subterm matches a
   rewrite rule. *)
let rec reducible_rec t =
  rule_matches t
  ||
  match t with
  | Hole | Const _ | All | Is _ -> false
  | Complement t1 | Find (t1, _, _) | Filter (t1, _) -> reducible_rec t1
  | Union ts | Intersect ts -> List.exists reducible_rec ts

let reducible t =
  Atomic.incr checks;
  reducible_rec t
