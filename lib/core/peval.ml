module Simage = Imageeye_symbolic.Simage
module Universe = Imageeye_symbolic.Universe
module Form = Form

module Cache = struct
  type t = {
    values : Simage.t Form.Tbl.t;
    mutable memo_hits : int;
    mutable value_hits : int;
    mutable value_misses : int;
    mutable evaluated : int;
  }

  let create () =
    {
      values = Form.Tbl.create 1024;
      memo_hits = 0;
      value_hits = 0;
      value_misses = 0;
      evaluated = 0;
    }
end

exception Inconsistent

let default_eval_is u phi = Simage.filter (fun ent -> Pred.entails ent phi) (Simage.full u)

let run ?eval_is ?cache ~check_goals ~collapse u (p : Partial.t) =
  let eval_is = match eval_is with Some f -> f | None -> default_eval_is u in
  let tick () =
    Eval.tick_node_evaluated ();
    match cache with
    | Some c -> c.Cache.evaluated <- c.Cache.evaluated + 1
    | None -> ()
  in
  (* Value cache for the operators whose semantics are worth sharing across
     candidates: keyed by the (canonical) form, so two distinct candidates
     containing the same subterm evaluate it once per search. *)
  let cached_op form compute =
    match cache with
    | None ->
        tick ();
        compute ()
    | Some c -> (
        match Form.Tbl.find_opt c.Cache.values form with
        | Some v ->
            c.Cache.value_hits <- c.Cache.value_hits + 1;
            v
        | None ->
            c.Cache.value_misses <- c.Cache.value_misses + 1;
            tick ();
            let v = compute () in
            Form.Tbl.add c.Cache.values form v;
            v)
  in
  (* Bottom-up walk returning the partially evaluated form plus, when the
     subtree is complete, its value.  With a cache, a node whose subtree was
     already evaluated during a previous [consider] of a candidate sharing
     it physically answers from its memo slot — the goal check is skipped
     because the memo is only written after the check passed and a node's
     goal annotation never changes. *)
  let rec go (p : Partial.t) : Form.t * Simage.t option =
    match cache with
    | Some c -> (
        match Partial.memo p with
        | Some m ->
            c.Cache.memo_hits <- c.Cache.memo_hits + 1;
            (m.Partial.mform, Some m.Partial.mvalue)
        | None -> eval_node p)
    | None -> eval_node p
  and eval_node (p : Partial.t) : Form.t * Simage.t option =
    let complete form value =
      if check_goals && not (Goal.consistent value p.Partial.goal) then raise Inconsistent;
      let form = if collapse then Form.Const value else form in
      (match cache with
      | Some _ -> Partial.set_memo p ~form ~value
      | None -> ());
      (form, Some value)
    in
    match p.node with
    | Partial.Hole -> (Form.Hole, None)
    | Partial.All ->
        tick ();
        complete Form.All (Simage.full u)
    | Partial.Is phi ->
        (* [eval_is] is already table-backed by the engine (compute_facts),
           so an extra form-keyed layer would only duplicate it. *)
        tick ();
        complete (Form.Is phi) (eval_is phi)
    | Partial.Complement q -> (
        let fq, vq = go q in
        let form = Form.Complement fq in
        match vq with
        | Some v -> complete form (cached_op form (fun () -> Simage.complement v))
        | None -> (form, None))
    | Partial.Union qs -> (
        let results = List.map go qs in
        let forms = List.map fst results in
        match all_values results with
        | Some vs ->
            tick ();
            complete (Form.Union forms) (Simage.union_all u vs)
        | None -> (Form.Union forms, None))
    | Partial.Intersect qs -> (
        let results = List.map go qs in
        let forms = List.map fst results in
        match all_values results with
        | Some vs ->
            tick ();
            complete (Form.Intersect forms) (Simage.inter_all u vs)
        | None -> (Form.Intersect forms, None))
    | Partial.Find (q, phi, f) -> (
        let fq, vq = go q in
        let form = Form.Find (fq, phi, f) in
        match vq with
        | Some v -> complete form (cached_op form (fun () -> Eval.find_from u v phi f))
        | None -> (form, None))
    | Partial.Filter (q, phi) -> (
        let fq, vq = go q in
        let form = Form.Filter (fq, phi) in
        match vq with
        | Some v -> complete form (cached_op form (fun () -> Eval.filter_from u v phi))
        | None -> (form, None))
  and all_values results =
    List.fold_right
      (fun (_, v) acc ->
        match (v, acc) with Some v, Some vs -> Some (v :: vs) | _ -> None)
      results (Some [])
  in
  match go p with form, _ -> Some form | exception Inconsistent -> None

let value_of_form = function Form.Const v -> Some v | _ -> None

let value_of_complete u p =
  match Partial.to_extractor p with
  | Some e -> Some (Eval.extractor u e)
  | None -> None
