module Simage = Imageeye_symbolic.Simage
module Universe = Imageeye_symbolic.Universe
module Events = Imageeye_engine.Events
module Scheduler = Imageeye_engine.Scheduler

type config = {
  goal_inference : bool;
  partial_eval : bool;
  equiv_reduction : bool;
  fwd_bwd : bool;
  absint_per_image : bool;
  absint_cardinality : bool;
  eval_cache : bool;
  value_bank : bool;
  optimality : bool;
  optimal_frontier : int;
  timeout_s : float;
  max_expansions : int;
  max_size : int;
  max_operands : int;
  age_thresholds : int list;
}

let default_config =
  {
    goal_inference = true;
    partial_eval = true;
    equiv_reduction = true;
    fwd_bwd = true;
    absint_per_image = true;
    absint_cardinality = true;
    eval_cache = true;
    value_bank = true;
    optimality = false;
    optimal_frontier = 200_000;
    timeout_s = 120.0;
    max_expansions = 2_000_000;
    max_size = 24;
    max_operands = 3;
    age_thresholds = [ 18 ];
  }

let spec_of_config config =
  {
    Prune.goal_inference = config.goal_inference;
    partial_eval = config.partial_eval;
    equiv_reduction = config.equiv_reduction;
    fwd_bwd = config.fwd_bwd;
  }

(* The named ablation axes of the fig16 experiment: one row per disabled
   technique.  Everything that builds ablation configs — the benchmark
   driver, [imageeye sweep --ablation], tests — consumes this table, so a
   new technique added here appears everywhere at once. *)
let ablations : (string * (config -> config)) list =
  [
    ("full", Fun.id);
    ("no-goal-inference", fun c -> { c with goal_inference = false });
    ("no-partial-eval", fun c -> { c with partial_eval = false });
    ("no-equiv-reduction", fun c -> { c with equiv_reduction = false });
    ("no-fwd-bwd", fun c -> { c with fwd_bwd = false });
    ("no-per-image", fun c -> { c with absint_per_image = false });
    ("no-cardinality", fun c -> { c with absint_cardinality = false });
    ("no-eval-cache", fun c -> { c with eval_cache = false });
    ("no-value-bank", fun c -> { c with value_bank = false });
    (* The one row that *adds* a technique instead of removing one:
       cost-directed optimal search (Optimal) on top of the full
       configuration, for quality-vs-nodes comparisons. *)
    ("optimal", fun c -> { c with optimality = true });
  ]

type stats = {
  popped : int;
  enqueued : int;
  pruned_infeasible : int;
  pruned_reducible : int;
  nodes : int;
  elapsed_s : float;
  prune_counts : (string * int) list;
}

let stats_pruned_total st = st.pruned_infeasible + st.pruned_reducible

let empty_stats =
  {
    popped = 0;
    enqueued = 0;
    pruned_infeasible = 0;
    pruned_reducible = 0;
    nodes = 0;
    elapsed_s = 0.0;
    prune_counts = [];
  }

let merge_counts a b =
  let tbl = Hashtbl.create 8 in
  let add (name, n) =
    Hashtbl.replace tbl name
      (n + Option.value (Hashtbl.find_opt tbl name) ~default:0)
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let add_stats a b =
  {
    popped = a.popped + b.popped;
    enqueued = a.enqueued + b.enqueued;
    pruned_infeasible = a.pruned_infeasible + b.pruned_infeasible;
    pruned_reducible = a.pruned_reducible + b.pruned_reducible;
    nodes = a.nodes + b.nodes;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
    prune_counts = merge_counts a.prune_counts b.prune_counts;
  }

(* Precomputed facts about the vocabulary over one input image: predicate
   extensions, and the largest possible output of each Find/Filter
   instantiation (independent of the nested extractor).  These refine goal
   inference: a Find(□, p, f) whose possible outputs cannot cover the
   hole's parent under-approximation is infeasible no matter how the hole
   is filled. *)
type vocab_facts = {
  extension : Pred.t -> Simage.t;
  find_insts : (Pred.t * Func.t * Simage.t) list;
  filter_insts : (Pred.t * Simage.t) list;
}

let compute_facts ?(dedup = true) u vocab =
  let ext_tbl = Hashtbl.create 64 in
  let extension p =
    match Hashtbl.find_opt ext_tbl p with
    | Some v -> v
    | None ->
        let v = Simage.filter (fun e -> Pred.entails e p) (Simage.full u) in
        Hashtbl.add ext_tbl p v;
        v
  in
  let n = Universe.size u in
  let full = Simage.full u in
  (* Semantic signature of a Find parameterization: the per-object value of
     f_phi.  Two (p, f) pairs with equal signatures yield equal Find results
     for every nested extractor, so only one representative is kept; a pair
     whose signature is everywhere None always produces the empty image and
     is dropped outright (a smaller always-empty program, Complement(All),
     is enumerated first).  Both cuts are observational-equivalence
     reductions, so they are disabled with the rest of Section 5.5. *)
  let seen_sigs = Hashtbl.create 64 in
  let find_insts =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun f ->
            let signature = Array.init n (Eval.find_first u f p) in
            let empty = Array.for_all (( = ) None) signature in
            if dedup then
              if empty || Hashtbl.mem seen_sigs signature then None
              else begin
                Hashtbl.add seen_sigs signature ();
                Some (p, f, Eval.find_from u full p f)
              end
            else Some (p, f, Eval.find_from u full p f))
          (Vocab.functions vocab))
      (Vocab.predicates vocab)
  in
  let seen_filter_sigs = Hashtbl.create 64 in
  let filter_insts =
    List.filter_map
      (fun p ->
        let signature =
          Array.init n (fun o ->
              List.filter
                (fun inner -> Pred.entails (Universe.entity u inner) p)
                (Array.to_list (Universe.contents u o)))
        in
        let empty = Array.for_all (( = ) []) signature in
        if dedup then
          if empty || Hashtbl.mem seen_filter_sigs signature then None
          else begin
            Hashtbl.add seen_filter_sigs signature ();
            Some (p, Eval.filter_from u full p)
          end
        else Some (p, Eval.filter_from u full p))
      (Vocab.predicates vocab)
  in
  { extension; find_insts; filter_insts }

(* All single-step instantiations of a hole whose goal is [goal]
   (the Expand rule of Fig. 11).  The pipeline's instantiation-time hooks
   filter parameterizations that cannot satisfy the hole's goal. *)
let instantiations u vocab facts config (ctx : Prune.context) passes goal =
  let child op =
    Partial.hole (if ctx.Prune.goal_checks then Goal.infer u op goal else Goal.trivial u)
  in
  let mk node = Partial.make goal node in
  let preds = Vocab.predicates vocab in
  let feasible reach =
    List.for_all (fun (p : Prune.pass) -> p.Prune.feasible ctx ~goal ~reach) passes
  in
  let leaves = mk Partial.All :: List.map (fun p -> mk (Partial.Is p)) preds in
  let complement = [ mk (Partial.Complement (child Goal.For_complement)) ] in
  let holes_for op k = List.init k (fun _ -> child op) in
  let rec arities k acc = if k < 2 then acc else arities (k - 1) (k :: acc) in
  let ks = arities config.max_operands [] in
  let unions = List.map (fun k -> mk (Partial.Union (holes_for Goal.For_union k))) ks in
  let intersects =
    List.map (fun k -> mk (Partial.Intersect (holes_for Goal.For_intersect k))) ks
  in
  let finds =
    List.filter_map
      (fun (p, f, reach) ->
        if feasible reach then Some (mk (Partial.Find (child Goal.For_find, p, f)))
        else None)
      facts.find_insts
  in
  let filters =
    List.filter_map
      (fun (p, reach) ->
        if feasible reach then Some (mk (Partial.Filter (child Goal.For_filter, p)))
        else None)
      facts.filter_insts
  in
  leaves @ complement @ unions @ intersects @ finds @ filters

(* Replace the leftmost hole of [p] with each instantiation whose size
   increment is [delta]; None when [p] is complete. *)
let min_delta = 0

let max_delta = 4 (* largest instantiation is Find with a parameterized predicate *)

(* [close] is the value-bank hole closure: [close goal ~delta] returns
   [Some candidates] to override the grammar for a hole (a bank emission,
   or [] when the bank already emitted for it at a smaller increment) and
   [None] to expand the grammar as usual.  Grammar instantiations are all
   single-step, so they only exist up to [max_delta]; the scheduler visits
   larger increments when the bank is on (its terms go deeper). *)
let expand u vocab facts config ctx passes ~close ~delta root =
  (* A hole's goal may have been tightened by the forward-backward
     analysis when this candidate (or an ancestor candidate sharing the
     hole node) was considered; the per-hole map is cached on the
     candidate root (the only per-candidate node that is never physically
     shared).  It overrides the filled hole's inferred goal everywhere:
     bank closure, instantiation feasibility, the new node's annotation,
     and its children's inferred goals — and is inherited by the derived
     candidates so the entries for their surviving holes keep applying. *)
  let rec go (p : Partial.t) =
    match p.node with
    | Partial.Hole -> (
        let goal =
          match Partial.tight_for root ~hole:p with Some g -> g | None -> p.goal
        in
        match close goal ~delta with
        | Some candidates -> Some candidates
        | None ->
            Some
              (if delta > max_delta then []
               else
                 List.filter
                   (fun inst -> Partial.size inst - 1 = delta)
                   (instantiations u vocab facts config ctx passes goal)))
    | Partial.All | Partial.Is _ -> None
    (* Spine nodes above the hole are rebuilt fresh (empty memo slot);
       unchanged sibling subtrees are shared physically, which is what
       lets their memos pay off across all candidates. *)
    | Partial.Complement q ->
        Option.map (List.map (fun q' -> Partial.make p.goal (Partial.Complement q'))) (go q)
    | Partial.Union qs ->
        Option.map
          (List.map (fun qs' -> Partial.make p.goal (Partial.Union qs')))
          (go_list qs)
    | Partial.Intersect qs ->
        Option.map
          (List.map (fun qs' -> Partial.make p.goal (Partial.Intersect qs')))
          (go_list qs)
    | Partial.Find (q, pr, f) ->
        Option.map
          (List.map (fun q' -> Partial.make p.goal (Partial.Find (q', pr, f))))
          (go q)
    | Partial.Filter (q, pr) ->
        Option.map
          (List.map (fun q' -> Partial.make p.goal (Partial.Filter (q', pr))))
          (go q)
  and go_list = function
    | [] -> None
    | q :: rest -> (
        match go q with
        | Some qs' -> Some (List.map (fun q' -> q' :: rest) qs')
        | None -> Option.map (List.map (fun rest' -> q :: rest')) (go_list rest))
  in
  match root.Partial.node with
  (* A root-level hole's candidates may be bank emissions, which are
     physically shared across candidates and Domains — never write to
     them.  The tight map could only concern the hole being filled, so
     there is nothing to inherit anyway. *)
  | Partial.Hole -> go root
  | _ ->
      Option.map
        (List.map (fun c ->
             Partial.inherit_tight ~from:root c;
             c))
        (go root)

let const_solved_label = Prune.partial_eval.Prune.name ^ "(const-solved)"

(* Caller-supplied search hooks, the mechanism behind cost-directed
   optimal search (Optimal).  [admit] vets every freshly generated
   candidate before any evaluation work (a rejection is attributed to
   [cost_bound_label] in the prune counts); [on_solution] observes each
   consistent complete program as it is found and decides whether the
   search continues past it (with hooks installed, [limit] no longer
   terminates the search — the hook does); [should_stop] is polled with
   the budget checks and ends the search with [`Found_enough]. *)
type hooks = {
  admit : Partial.t -> bool;
  on_solution : Lang.extractor -> [ `Continue | `Stop ];
  should_stop : unit -> bool;
}

let cost_bound_label = "cost-bound"

let stats_of_events ev ~nodes =
  {
    popped = Events.popped ev;
    enqueued = Events.enqueued ev;
    pruned_infeasible = Events.pruned ev Prune.goal_inference.Prune.name;
    pruned_reducible =
      Events.pruned ev Prune.equiv_rewrite.Prune.name
      + Events.pruned ev Prune.equiv_dedup.Prune.name;
    nodes;
    elapsed_s = Events.elapsed_s ev;
    prune_counts = Events.counts ev;
  }

let search ~config ~limit ?hooks ?sink ?demo_images u i_out =
  let vocab = Bank_registry.vocab u ~age_thresholds:config.age_thresholds in
  let passes = Prune.pipeline (spec_of_config config) in
  (* The Find/Filter signature dedup evaluates parameterizations on the
     input image, so it belongs to the partial-evaluation-powered part of
     equivalence reduction and is disabled with either ablation. *)
  let facts =
    compute_facts ~dedup:(config.equiv_reduction && config.partial_eval) u vocab
  in
  let absint =
    if Prune.wants_absint passes then begin
      (* Reach tables for the analysis, shared with the instantiation-time
         feasibility facts.  Parameterizations outside the (possibly
         deduplicated) fact lists — e.g. inside bank-emitted terms — fall
         back to the full universe, which is sound and uninformative. *)
      let find_tbl = Hashtbl.create 64 and filter_tbl = Hashtbl.create 64 in
      List.iter (fun (p, f, reach) -> Hashtbl.replace find_tbl (p, f) reach)
        facts.find_insts;
      List.iter (fun (p, reach) -> Hashtbl.replace filter_tbl p reach)
        facts.filter_insts;
      let full = Simage.full u in
      Some
        (Absint.make_env u
           ~max_iterations:(Absint.max_iterations_from_env ())
           ~per_image:config.absint_per_image
           ~cardinality:config.absint_cardinality
           ?demo_images
           ~reach_find:(fun p f ->
             Option.value (Hashtbl.find_opt find_tbl (p, f)) ~default:full)
           ~reach_filter:(fun p ->
             Option.value (Hashtbl.find_opt filter_tbl p) ~default:full))
    end
    else None
  in
  let ctx =
    {
      Prune.u;
      eval_is = facts.extension;
      goal_checks = Prune.wants_goal_checks passes;
      collapse = Prune.wants_collapse passes;
      absint;
    }
  in
  let checks = List.map (fun (p : Prune.pass) -> (p, p.Prune.fresh ())) passes in
  let cache = if config.eval_cache then Some (Peval.Cache.create ()) else None in
  let ev = Events.create ?sink () in
  (* The value bank substitutes ONE term per exact-window hole, which is
     only solution-preserving when one solution is all the caller wants:
     multi-solution searches (active learning's candidate disagreement)
     need the grammar's syntactic variety, so the bank stands down. *)
  let bank =
    if config.value_bank && limit = 1 then
      Some
        (Bank_registry.handle u ~age_thresholds:config.age_thresholds
           ~max_operands:config.max_operands)
    else None
  in
  let bank_stored0 = match bank with Some h -> Bank_registry.stored h | None -> 0 in
  let close =
    match bank with
    | None -> fun _goal ~delta:_ -> None
    | Some h -> (
        fun goal ~delta ->
          match Bank_registry.close_hole h ~collapse:ctx.Prune.collapse ~goal ~delta with
          | None -> None
          | Some (Bank_registry.Emit p) ->
              Events.record ev (Events.Counted ("value-bank(hit)", 1));
              Some [ p ]
          | Some Bank_registry.Skip -> Some []
          | Some Bank_registry.Fallback ->
              Events.record ev (Events.Counted ("value-bank(miss)", 1));
              None)
  in
  let nodes0 = Eval.count_local_nodes () in
  let solutions = ref [] in
  let exception Done in
  (* Process one freshly generated candidate: run the pruning pipeline,
     recognize complete solutions on the spot (partial evaluation has
     already computed every complete candidate's value, so deferring the
     check to a later pop would only re-evaluate it), or enqueue it. *)
  (* The hook gate runs before any evaluation work: a candidate the
     caller can already rule out (e.g. its cost lower bound cannot beat
     the optimal search's incumbent) costs nothing but the bound. *)
  let admitted p' =
    match hooks with
    | Some h when not (h.admit p') ->
        Events.record ev (Events.Pruned cost_bound_label);
        false
    | _ -> true
  in
  let consider ~push p' =
    if Partial.size p' <= config.max_size && admitted p' then begin
      let form =
        Peval.run ~eval_is:ctx.Prune.eval_is ?cache ~check_goals:ctx.Prune.goal_checks
          ~collapse:ctx.Prune.collapse u p'
      in
      let extractor = Partial.to_extractor p' in
      let complete = extractor <> None in
      let cand = { Prune.partial = p'; form } in
      let rec gate = function
        | [] -> None
        | ((pass : Prune.pass), check) :: rest ->
            if complete && not pass.Prune.on_complete then gate rest
            else (
              match check ctx cand with
              | Prune.Reject -> Some pass.Prune.name
              | Prune.Admit -> gate rest)
      in
      match gate checks with
      | Some pass_name -> Events.record ev (Events.Pruned pass_name)
      | None -> (
          match extractor with
          | Some e ->
              (* A complete candidate is either an answer or dead. *)
              let value =
                match form with
                | Some (Peval.Form.Const v) ->
                    Events.record ev (Events.Noted const_solved_label);
                    v
                | _ -> Eval.extractor u e
              in
              if Simage.equal value i_out then begin
                Events.record ev Events.Success;
                solutions := e :: !solutions;
                match hooks with
                | Some h -> (
                    match h.on_solution e with
                    | `Stop -> raise Done
                    | `Continue -> ())
                | None -> if List.length !solutions >= limit then raise Done
              end
          | None ->
              Events.record ev Events.Enqueued;
              push p')
    end
  in
  let problem =
    {
      Scheduler.Tiered.size = Partial.size;
      depth = Partial.depth;
      min_delta;
      (* Bank terms reach sizes the single-step grammar never produces in
         one increment, so the scheduler must visit the deeper tiers. *)
      max_delta =
        (match bank with
        | Some _ -> max max_delta Bank_registry.bank_max_delta
        | None -> max_delta);
      max_size = config.max_size;
      expand = (fun p ~delta -> expand u vocab facts config ctx passes ~close ~delta p);
      consider;
    }
  in
  let stop () : [ `Found_enough | `Timeout | `Exhausted ] option =
    match hooks with
    | Some h when h.should_stop () -> Some `Found_enough
    | _ ->
        if Events.elapsed_s ev > config.timeout_s then Some `Timeout
        else if Events.popped ev >= config.max_expansions then Some `Exhausted
        else None
  in
  let root = Partial.hole (Goal.exact i_out) in
  let reason =
    match
      Scheduler.Tiered.run problem ~stop
        ~on_pop:(fun _ -> Events.record ev Events.Popped)
        ~roots:[ root ] ~exhausted:`Exhausted
    with
    | r -> r
    | exception Done -> `Found_enough
  in
  (* Fold the cache counters into the per-label stats so benchmarks and
     the sweep report see hit rates without a separate channel.  The
     labels share the "eval-cache(" prefix so equivalence checks between
     cached and uncached runs can strip them uniformly. *)
  (match cache with
  | Some c ->
      List.iter
        (fun (label, n) ->
          if n > 0 then Events.record ev (Events.Counted ("eval-cache(" ^ label ^ ")", n)))
        [
          ("memo-hit", c.Peval.Cache.memo_hits);
          ("value-hit", c.Peval.Cache.value_hits);
          ("value-miss", c.Peval.Cache.value_misses);
          ("evaluated", c.Peval.Cache.evaluated);
        ]
  | None -> ());
  (match bank with
  | Some h ->
      let built = Bank_registry.stored h - bank_stored0 in
      if built > 0 then Events.record ev (Events.Counted ("value-bank(built)", built))
  | None -> ());
  (match absint with
  | Some env ->
      List.iter
        (fun (label, n) ->
          if n > 0 then Events.record ev (Events.Counted ("fwd-bwd(" ^ label ^ ")", n)))
        [
          ("iterations", env.Absint.iterations);
          ("tightened", env.Absint.tightened);
          ("cap-hit", env.Absint.cap_hits);
          ("card-kill", env.Absint.card_kills);
        ]
  | None -> ());
  (List.rev !solutions, reason,
   stats_of_events ev ~nodes:(Eval.count_local_nodes () - nodes0))
