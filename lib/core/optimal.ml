(* Cost-directed optimal synthesis: branch-and-bound over the same
   worklist search that powers first-consistent mode.

   One search runs, not two.  Until the first consistent program
   appears, the hooks are inert and the exploration is exactly the
   first-consistent search (same order, same prunes, same bank).  From
   then on the best program found so far is the incumbent, and every
   freshly generated candidate is admitted only if its admissible cost
   lower bound (Cost.lower_bound) is strictly below the incumbent's
   cost — i.e. some completion could still win.  Because the existing
   prune passes are solution-preserving (they reject only candidates no
   completion of which satisfies the spec) and the bound is admissible,
   a candidate is skipped only when it cannot both satisfy the spec and
   beat the incumbent, so the incumbent at the end is the minimum-cost
   consistent program in the explored space.

   Size dominates the cost total, so the bound confines the
   post-incumbent frontier to a thin band of size tiers above the
   incumbent; [frontier] additionally caps how many candidates are
   generated without an incumbent improvement before the search settles
   (`Found_enough), keeping the optimal pass a bounded tax over
   first-consistent mode even on tasks where that band is wide. *)

type result = {
  best : (Lang.extractor * Cost.t) option;
  first : (Lang.extractor * Cost.t) option;
  enumerated : Lang.extractor list;
  reason : [ `Found_enough | `Timeout | `Exhausted ];
  stats : Engine_search.stats;
}

let default_frontier = Engine_search.default_config.Engine_search.optimal_frontier

let search ~config ?frontier ?sink ?demo_images u i_out =
  let frontier =
    Option.value frontier ~default:config.Engine_search.optimal_frontier
  in
  let incumbent = ref None in
  let first = ref None in
  (* Candidates generated since the incumbent last improved; the
     counter, not a clock, so deterministic budgets stay deterministic. *)
  let since_improvement = ref 0 in
  let admit p =
    match !incumbent with
    | None -> true
    | Some (_, c) ->
        incr since_improvement;
        Cost.compare (Cost.lower_bound p) c < 0
  in
  let on_solution e =
    let c = Cost.of_extractor e in
    if !first = None then first := Some (e, c);
    (match !incumbent with
    | None ->
        incumbent := Some (e, c);
        since_improvement := 0
    | Some (_, c0) ->
        (* [admit] already rejected lower bounds >= c0 at generation
           time, so a solution reaching this point is strictly cheaper
           whenever the incumbent predates its generation; the
           comparison keeps the invariant locally obvious. *)
        if Cost.compare c c0 < 0 then begin
          incumbent := Some (e, c);
          since_improvement := 0
        end);
    `Continue
  in
  let should_stop () = !incumbent <> None && !since_improvement > frontier in
  let hooks = { Engine_search.admit; on_solution; should_stop } in
  (* limit:1 keeps the value bank in play (it keys participation on
     single-solution searches); termination is the hooks' job. *)
  let enumerated, reason, stats =
    Engine_search.search ~config ~limit:1 ~hooks ?sink ?demo_images u i_out
  in
  { best = !incumbent; first = !first; enumerated; reason; stats }
