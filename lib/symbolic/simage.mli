(** Symbolic images (Definition 3.1): sets of objects over a shared
    universe.

    A symbolic image is the set-of-objects abstraction of one — or, as in
    Section 3, several — raw images.  All DSL extractor semantics and all
    the synthesizer's goal reasoning are set operations on these values, so
    they are thin wrappers around {!Imageeye_util.Bitset} carrying their
    universe.

    Values are {e hash-consed} per universe (see {!Universe.intern}):
    every constructor interns the resulting bitset, so {!equal} is an
    integer comparison, {!hash} is precomputed, and structurally equal
    images built by different search branches share one bitset.
    {!compare} stays structural — it canonicalizes commutative operands
    during search, and interning order is not reproducible across runs. *)

type t

val universe : t -> Universe.t

val empty : Universe.t -> t
val full : Universe.t -> t
(** Every object of the universe: this is the Î_in of the search. *)

val of_ids : Universe.t -> int list -> t
val to_ids : t -> int list
val of_bitset : Universe.t -> Imageeye_util.Bitset.t -> t
val bitset : t -> Imageeye_util.Bitset.t

val mem : t -> int -> bool
val add : t -> int -> t
val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val union_all : Universe.t -> t list -> t
val inter_all : Universe.t -> t list -> t
(** [inter_all u \[\]] is [full u] (neutral element of intersection). *)

val subset : t -> t -> bool

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a] and [b] share no object — a word-level AND-test
    over the underlying bitsets, with no intermediate allocation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val filter : (Entity.t -> bool) -> t -> t
val iter : (Entity.t -> unit) -> t -> unit
val fold : (Entity.t -> 'a -> 'a) -> t -> 'a -> 'a
val entities : t -> Entity.t list

val restrict_to_image : t -> int -> t
(** Objects of the set that belong to the given raw image. *)

val pp : Format.formatter -> t -> unit
