(** The object universe of a batch, with precomputed spatial indices.

    A universe fixes the set of all detected objects across the raw images
    under consideration; symbolic images ({!Simage}) are subsets of it.
    Because the DSL evaluator asks "what is to the right of object o" and
    "what contains o" millions of times during search, those relations are
    computed once per universe, restricted to objects of the same raw
    image, and stored as sorted arrays using the orderings of Fig. 7:

    - [right_of u i]: objects right of [i], ascending by left edge;
    - [left_of u i]: objects left of [i], descending by right edge;
    - [above u i]: objects above [i], descending by bottom edge;
    - [below u i]: objects below [i], ascending by top edge;
    - [parents u i]: objects whose box strictly contains [i]'s, innermost
      (smallest area) first;
    - [contents u i]: objects strictly inside [i]'s box. *)

type t

type interned = private {
  bits : Imageeye_util.Bitset.t;  (** the canonical (shared) bitset *)
  uid : int;  (** unique within this universe; equal sets share one uid *)
  bhash : int;  (** structural hash, precomputed once at intern time *)
}
(** A hash-consed object set over one universe: {!Simage} values carry
    these cells, so set equality is a uid comparison and hashing is O(1).
    The uid is an interning order, which can differ between runs (and
    between Domains racing to intern); it must only ever be compared for
    equality — orderings stay structural for cross-run determinism. *)

val of_entities : Entity.t list -> t
(** Entities must have ids exactly [0 .. n-1]; raises [Invalid_argument]
    otherwise. *)

val uid : t -> int
(** Identity of this universe, unique within the process; lets registries
    (e.g. the synthesizer's per-universe extractor value banks) key caches
    by universe without holding a comparison order.  Creation order can
    differ between runs and Domains — only compare uids for equality. *)

val size : t -> int
val entity : t -> int -> Entity.t
val entities : t -> Entity.t list
val image_ids : t -> int list
(** Distinct raw-image ids, ascending. *)

val objects_of_image : t -> int -> int list
(** Ids of all objects detected in one raw image. *)

val intern : t -> Imageeye_util.Bitset.t -> interned
(** The canonical cell for a bitset over this universe, creating it on
    first sight.  Thread-safe (callable from any Domain).  Raises
    [Invalid_argument] when the bitset's universe size does not match. *)

val interned_count : t -> int
(** Number of distinct object sets interned so far (instrumentation). *)

val right_of : t -> int -> int array
val left_of : t -> int -> int array
val above : t -> int -> int array
val below : t -> int -> int array
val parents : t -> int -> int array
val contents : t -> int -> int array
