module Bbox = Imageeye_geometry.Bbox
module Bitset = Imageeye_util.Bitset

module BitsetTbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

type interned = { bits : Bitset.t; uid : int; bhash : int }

type t = {
  uid : int;
  entities : Entity.t array;
  right_of : int array array;
  left_of : int array array;
  above : int array array;
  below : int array array;
  parents : int array array;
  contents : int array array;
  (* Hash-consing of the object sets (symbolic images) over this universe:
     each distinct bitset is interned once, so set equality is an integer
     comparison and hashes are precomputed.  Shared by every Domain
     searching over the universe, hence the mutex. *)
  intern_tbl : interned BitsetTbl.t;
  intern_mutex : Mutex.t;
  mutable intern_next : int;
}

let sorted_related entities i ~related ~key ~ascending =
  let o = entities.(i) in
  let candidates = ref [] in
  Array.iter
    (fun (o' : Entity.t) ->
      if o'.id <> o.Entity.id && o'.image_id = o.image_id && related o' o then
        candidates := o'.id :: !candidates)
    entities;
  let arr = Array.of_list !candidates in
  let cmp a b =
    let ka = key entities.(a) and kb = key entities.(b) in
    let c = compare ka kb in
    (* Tie-break on id for determinism. *)
    let c = if c = 0 then compare a b else c in
    if ascending then c else -c
  in
  Array.sort cmp arr;
  arr

(* Universe identity for registries that key caches by universe (e.g. the
   synthesizer's per-universe value banks).  Like interned uids, creation
   order can differ between runs; only compare for equality. *)
let next_uid = Atomic.make 0

let of_entities ents =
  let entities = Array.of_list ents in
  Array.iteri
    (fun i (e : Entity.t) ->
      if e.id <> i then
        invalid_arg
          (Printf.sprintf "Universe.of_entities: entity at position %d has id %d" i e.id))
    entities;
  let n = Array.length entities in
  let build related key ascending =
    Array.init n (fun i -> sorted_related entities i ~related ~key ~ascending)
  in
  let box (e : Entity.t) = e.bbox in
  {
    uid = Atomic.fetch_and_add next_uid 1;
    entities;
    (* o' is right of o when o'.left > o.right (Fig. 7), closest first. *)
    right_of =
      build (fun o' o -> Bbox.is_right_of (box o') (box o)) (fun e -> e.Entity.bbox.left) true;
    left_of =
      build (fun o' o -> Bbox.is_left_of (box o') (box o)) (fun e -> e.Entity.bbox.right) false;
    above =
      build (fun o' o -> Bbox.is_above (box o') (box o)) (fun e -> e.Entity.bbox.bottom) false;
    below =
      build (fun o' o -> Bbox.is_below (box o') (box o)) (fun e -> e.Entity.bbox.top) true;
    parents =
      build
        (fun o' o -> Bbox.strictly_contains ~outer:(box o') ~inner:(box o))
        (fun e -> Bbox.area e.Entity.bbox)
        true;
    contents =
      build
        (fun o' o -> Bbox.strictly_contains ~outer:(box o) ~inner:(box o'))
        (fun e -> e.Entity.bbox.left)
        true;
    intern_tbl = BitsetTbl.create 4096;
    intern_mutex = Mutex.create ();
    intern_next = 0;
  }

let intern t bits =
  if Bitset.universe_size bits <> Array.length t.entities then
    invalid_arg "Universe.intern: bitset size does not match the universe";
  Mutex.lock t.intern_mutex;
  let cell =
    match BitsetTbl.find_opt t.intern_tbl bits with
    | Some cell -> cell
    | None ->
        (* The hash is structural (word-array based), so it is identical
           across runs; uids are only ever compared for equality. *)
        let cell = { bits; uid = t.intern_next; bhash = Bitset.hash bits } in
        t.intern_next <- t.intern_next + 1;
        BitsetTbl.add t.intern_tbl bits cell;
        cell
  in
  Mutex.unlock t.intern_mutex;
  cell

let interned_count t =
  Mutex.lock t.intern_mutex;
  let n = t.intern_next in
  Mutex.unlock t.intern_mutex;
  n

let uid t = t.uid
let size t = Array.length t.entities
let entity t i = t.entities.(i)
let entities t = Array.to_list t.entities

let image_ids t =
  let module IS = Set.Make (Int) in
  IS.elements
    (Array.fold_left (fun s (e : Entity.t) -> IS.add e.image_id s) IS.empty t.entities)

let objects_of_image t img =
  Array.to_list t.entities
  |> List.filter_map (fun (e : Entity.t) -> if e.image_id = img then Some e.id else None)

let right_of t i = t.right_of.(i)
let left_of t i = t.left_of.(i)
let above t i = t.above.(i)
let below t i = t.below.(i)
let parents t i = t.parents.(i)
let contents t i = t.contents.(i)
