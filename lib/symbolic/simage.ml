module Bitset = Imageeye_util.Bitset

(* Hash-consed: every symbolic image holds the canonical interned cell of
   its object set, so [equal] is a uid comparison, [hash] is precomputed,
   and structurally equal values built independently share one bitset. *)
type t = { universe : Universe.t; cell : Universe.interned }

let universe t = t.universe

let make u bits = { universe = u; cell = Universe.intern u bits }

let objs t = t.cell.Universe.bits

let empty u = make u (Bitset.create (Universe.size u))
let full u = make u (Bitset.full (Universe.size u))

let of_ids u ids = make u (Bitset.of_list (Universe.size u) ids)
let to_ids t = Bitset.to_list (objs t)
let of_bitset u b =
  if Bitset.universe_size b <> Universe.size u then
    invalid_arg "Simage.of_bitset: size mismatch";
  make u b

let bitset t = objs t

let mem t i = Bitset.mem (objs t) i
let add t i = make t.universe (Bitset.add (objs t) i)
let cardinal t = Bitset.cardinal (objs t)
let is_empty t = Bitset.is_empty (objs t)

let lift2 f a b = make a.universe (f (objs a) (objs b))

let union a b = lift2 Bitset.union a b
let inter a b = lift2 Bitset.inter a b
let diff a b = lift2 Bitset.diff a b
let complement t = make t.universe (Bitset.complement (objs t))

(* Fold on raw bitsets and intern the result once, instead of interning
   every intermediate set. *)
let union_all u imgs =
  make u
    (List.fold_left
       (fun acc t -> Bitset.union acc (objs t))
       (Bitset.create (Universe.size u))
       imgs)

let inter_all u imgs =
  make u
    (List.fold_left
       (fun acc t -> Bitset.inter acc (objs t))
       (Bitset.full (Universe.size u))
       imgs)

let subset a b = Bitset.subset (objs a) (objs b)
let disjoint a b = Bitset.disjoint (objs a) (objs b)

let equal a b =
  if a.universe == b.universe then a.cell.Universe.uid = b.cell.Universe.uid
  else Bitset.equal (objs a) (objs b)

(* The ordering stays structural: interning uids depend on evaluation
   order (and on Domain interleaving), while this order canonicalizes
   commutative operands during search and must be reproducible. *)
let compare a b =
  if a.universe == b.universe && a.cell.Universe.uid = b.cell.Universe.uid then 0
  else Bitset.compare (objs a) (objs b)

let hash t = t.cell.Universe.bhash

let filter p t =
  make t.universe
    (Bitset.filter (fun i -> p (Universe.entity t.universe i)) (objs t))

let iter f t = Bitset.iter (fun i -> f (Universe.entity t.universe i)) (objs t)

let fold f t init =
  Bitset.fold (fun i acc -> f (Universe.entity t.universe i) acc) (objs t) init

let entities t = List.rev (fold (fun e acc -> e :: acc) t [])

let restrict_to_image t img = filter (fun e -> e.Entity.image_id = img) t

let pp fmt t = Bitset.pp fmt (objs t)
