(* The imageeye command-line interface.

   Subcommands:
     generate   make a synthetic dataset (scene metadata + rendered PPMs)
     objects    list the detected objects of a dataset directory
     synthesize learn a program from a demonstration file
     explain    why a program selects / skips an object
     tasks      list the 50 benchmark tasks
     show       print one benchmark task and its ground-truth program
     learn      run the demonstration loop for a benchmark task
     sweep      run the demonstration loop over many tasks, optionally in parallel
     apply      apply a DSL program file to a dataset directory
     accuracy   measure a task's RQ5 accuracy under the imperfect detector
     report     learn a task and write an HTML before/after gallery
     parse      validate and pretty-print a DSL program file *)

open Cmdliner
module Lang = Imageeye_core.Lang
module Parser = Imageeye_core.Parser
module Synthesizer = Imageeye_core.Synthesizer
module Apply = Imageeye_core.Apply
module Dataset = Imageeye_scene.Dataset
module Scene = Imageeye_scene.Scene
module Scene_io = Imageeye_scene.Scene_io
module Render = Imageeye_scene.Render
module Batch = Imageeye_vision.Batch
module Session = Imageeye_interact.Session
module Benchmarks = Imageeye_tasks.Benchmarks
module Task = Imageeye_tasks.Task
module Ppm = Imageeye_raster.Ppm

let domain_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "wedding" -> Ok Dataset.Wedding
    | "receipts" -> Ok Dataset.Receipts
    | "objects" -> Ok Dataset.Objects
    | other -> Error (`Msg (Printf.sprintf "unknown domain %S (wedding|receipts|objects)" other))
  in
  let print fmt d = Format.pp_print_string fmt (String.lowercase_ascii (Dataset.domain_name d)) in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Dataset generation seed.")

(* mkdir -p: an output path like results/run3/edited should just work. *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save_text path text =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  match Parser.program (read_file path) with
  | Ok p -> p
  | Error e -> failwith (Printf.sprintf "%s: %s" path (Parser.error_to_string e))

(* ---------- generate ---------- *)

let generate domain count seed out render =
  let count = Option.value count ~default:(Dataset.default_image_count domain) in
  let dataset = Dataset.generate ~n_images:count ~seed domain in
  ensure_dir out;
  Scene_io.save_dataset dataset ~dir:out;
  if render then
    List.iter
      (fun (s : Scene.t) ->
        Ppm.write (Render.scene s) (Filename.concat out (Printf.sprintf "%04d.ppm" s.image_id)))
      dataset.scenes;
  Printf.printf "wrote %d %s scene(s)%s to %s\n" count (Dataset.domain_name dataset.domain)
    (if render then " and rendered PPMs" else "")
    out

let generate_cmd =
  let domain =
    Arg.(required & pos 0 (some domain_conv) None & info [] ~docv:"DOMAIN")
  in
  let count =
    Arg.(value & opt (some int) None & info [ "n"; "count" ] ~docv:"N"
           ~doc:"Number of images (default: the paper's count for the domain).")
  in
  let out = Arg.(value & opt string "dataset" & info [ "o"; "out" ] ~docv:"DIR") in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Also write rendered PPM images.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset for a domain.")
    Term.(const generate $ domain $ count $ seed_arg $ out $ render)

(* ---------- tasks / show ---------- *)

let list_tasks () =
  List.iter
    (fun t ->
      Printf.printf "%2d  %-8s size %2d  %s\n" t.Task.id
        (Dataset.domain_name t.Task.domain) (Task.size t) t.Task.description)
    Benchmarks.all

let tasks_cmd =
  Cmd.v (Cmd.info "tasks" ~doc:"List the 50 benchmark tasks of Appendix B.")
    Term.(const list_tasks $ const ())

let task_id_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"TASK-ID")

let show id =
  let t = Benchmarks.by_id id in
  Printf.printf "task %d (%s, size %d)\n%s\n%s\n" t.Task.id
    (Dataset.domain_name t.Task.domain) (Task.size t) t.Task.description
    (Lang.program_to_string t.Task.ground_truth)

let show_cmd =
  Cmd.v (Cmd.info "show" ~doc:"Print one benchmark task and its ground truth.")
    Term.(const show $ task_id_arg)

(* ---------- learn ---------- *)

let learn id images seed timeout save =
  let t = Benchmarks.by_id id in
  let n = Option.value images ~default:(Dataset.default_image_count t.Task.domain) in
  let dataset = Dataset.generate ~n_images:n ~seed t.Task.domain in
  Printf.printf "task %d: %s\n" id t.Task.description;
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  let result = Session.run ~config ~dataset t in
  List.iter
    (fun (r : Session.round) ->
      Printf.printf "  round %d: demo image %d, %.2fs -> %s\n" r.round_index r.demo_image
        r.synth_time
        (match r.candidate with Some p -> Lang.program_to_string p | None -> "(failed)"))
    result.Session.rounds;
  match result.Session.program with
  | Some p ->
      Printf.printf "solved with %d demonstration(s): %s\n" result.Session.examples_used
        (Lang.program_to_string p);
      Option.iter
        (fun path ->
          save_text path (Lang.program_to_string p);
          Printf.printf "saved to %s\n" path)
        save
  | None ->
      Printf.printf "FAILED (%s)\n"
        (match result.Session.failure with
        | Some Session.Synth_failed -> "synthesis timed out"
        | Some Session.Rounds_exhausted -> "too many rounds"
        | Some Session.No_useful_image -> "no useful demonstration image"
        | None -> "unknown");
      exit 1

let learn_cmd =
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size (default: the paper's).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-round synthesis timeout.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Write the learned program to FILE.")
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Run the demonstration loop for a benchmark task and print the learned program.")
    Term.(const learn $ task_id_arg $ images $ seed_arg $ timeout $ save)

(* ---------- sweep ---------- *)

let sweep task_ids images seed timeout jobs value_bank json_path =
  let tasks =
    match task_ids with
    | [] -> Benchmarks.all
    | ids ->
        List.map
          (fun id ->
            match Benchmarks.by_id id with
            | t -> t
            | exception Not_found ->
                failwith (Printf.sprintf "no benchmark task %d (ids run 1-%d)" id Benchmarks.count))
          ids
  in
  let domains = List.sort_uniq compare (List.map (fun t -> t.Task.domain) tasks) in
  (* Build every dataset and batch universe up front: the per-task jobs
     must not race on shared caches once the pool fans out. *)
  let prepared =
    List.map
      (fun domain ->
        let n = Option.value images ~default:(Dataset.default_image_count domain) in
        let dataset = Dataset.generate ~n_images:n ~seed domain in
        let universe = Batch.universe_of_scenes dataset.scenes in
        (domain, (dataset, universe)))
      domains
  in
  let config = { Synthesizer.default_config with timeout_s = timeout; value_bank } in
  let started = Imageeye_util.Clock.counter () in
  let results =
    Imageeye_tasks.Runner.run_tasks ~jobs
      (fun t ->
        let dataset, universe = List.assoc t.Task.domain prepared in
        Session.run ~config ~batch_universe:universe ~dataset t)
      tasks
  in
  let wall = Imageeye_util.Clock.elapsed_s started in
  List.iter
    (fun (t, r) ->
      Printf.printf "%2d  %-8s size %2d  %s  rounds=%d last=%.2fs  %s\n" t.Task.id
        (Dataset.domain_name t.Task.domain) (Task.size t)
        (if r.Session.solved then "solved" else "FAILED")
        r.Session.examples_used r.Session.last_round_time
        (match r.Session.program with
        | Some p -> Lang.program_to_string p
        | None -> "-"))
    results;
  let solved = List.filter (fun (_, r) -> r.Session.solved) results in
  let prune = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun (rd : Session.round) ->
          Option.iter
            (fun (s : Synthesizer.stats) ->
              List.iter
                (fun (label, n) ->
                  Hashtbl.replace prune label
                    (n + Option.value (Hashtbl.find_opt prune label) ~default:0))
                s.Synthesizer.prune_counts)
            rd.synth_stats)
        r.Session.rounds)
    results;
  Printf.printf "solved %d/%d task(s) in %.1fs wall (jobs=%d)\n" (List.length solved)
    (List.length results) wall jobs;
  let all_labels =
    List.sort compare (Hashtbl.fold (fun label n acc -> (label, n) :: acc) prune [])
  in
  let is_cache_label label =
    String.length label >= 11 && String.sub label 0 11 = "eval-cache("
  in
  let cache_labels, labels = List.partition (fun (l, _) -> is_cache_label l) all_labels in
  if labels <> [] then (
    Printf.printf "prune attribution:\n";
    List.iter (fun (label, n) -> Printf.printf "  %-28s %d\n" label n) labels);
  (let get l = Option.value ~default:0 (List.assoc_opt ("eval-cache(" ^ l ^ ")") cache_labels) in
   let memo = get "memo-hit" and vhit = get "value-hit" and evaluated = get "evaluated" in
   let visited = memo + vhit + evaluated in
   if visited > 0 then
     Printf.printf
       "evaluation cache: %d memo hits, %d value hits, %d evaluated (hit rate %.1f%%)\n" memo
       vhit evaluated
       (100.0 *. float_of_int (memo + vhit) /. float_of_int visited));
  Option.iter
    (fun path ->
      let open Imageeye_util.Jsonout in
      Imageeye_interact.Sweep_json.write
        ~meta:
          [
            ("bench", Str "imageeye-cli-sweep");
            ("seed", Int seed);
            ("jobs", Int jobs);
            ("timeout_s", Float timeout);
            ("value_bank", Bool value_bank);
          ]
        path (List.map snd results);
      Printf.printf "wrote sweep trajectory to %s\n" path)
    json_path;
  if solved = [] then exit 1

let sweep_cmd =
  let task_ids =
    Arg.(value & opt (list int) [] & info [ "tasks" ] ~docv:"ID,ID,..."
           ~doc:"Benchmark task ids to run (default: all 50).")
  in
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size per domain (default: the paper's).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-round synthesis timeout.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains to run tasks on in parallel (1 = sequential; size to the              available cores).")
  in
  let value_bank =
    Term.(
      const not
      $ Arg.(value & flag & info [ "no-value-bank" ]
               ~doc:"Disable the bottom-up extractor value bank (pure top-down search)."))
  in
  let json_path =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the per-task sweep trajectory (solved, time, nodes, prune              counters) as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run the demonstration loop over many benchmark tasks and summarize, optionally              on a parallel Domain pool.")
    Term.(const sweep $ task_ids $ images $ seed_arg $ timeout $ jobs $ value_bank $ json_path)

(* ---------- apply ---------- *)

let apply_cmd_impl program_path scenes_dir out =
  let program = load_program program_path in
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  ensure_dir out;
  List.iter
    (fun (s : Scene.t) ->
      let img = Render.scene s in
      let u = Batch.universe_of_scenes [ s ] in
      let edited = Apply.program u img program in
      Ppm.write edited (Filename.concat out (Printf.sprintf "%04d.ppm" s.image_id)))
    scenes;
  Printf.printf "applied %s to %d image(s); output in %s\n"
    (Lang.program_to_string program)
    (List.length scenes) out

let apply_cmd =
  let program =
    Arg.(required & opt (some file) None & info [ "p"; "program" ] ~docv:"FILE")
  in
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let out = Arg.(value & opt string "edited" & info [ "o"; "out" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a DSL program to every image of a dataset directory.")
    Term.(const apply_cmd_impl $ program $ scenes $ out)

(* ---------- accuracy ---------- *)

let accuracy id samples seed =
  let t = Benchmarks.by_id id in
  let dataset =
    Dataset.generate ~n_images:(Dataset.default_image_count t.Task.domain) ~seed t.Task.domain
  in
  let report =
    Imageeye_interact.Accuracy.evaluate ~noise:Imageeye_vision.Noise.default_imperfect ~seed
      ~samples t.Task.ground_truth dataset
  in
  Printf.printf
    "task %d: intended edit on %d of %d sampled images (%.1f%%) under the imperfect detector
"
    id report.Imageeye_interact.Accuracy.correct report.Imageeye_interact.Accuracy.sampled
    (100.0 *. report.Imageeye_interact.Accuracy.accuracy)

let accuracy_cmd =
  let samples =
    Arg.(value & opt int 20 & info [ "samples" ] ~docv:"N"
           ~doc:"Images to sample (with non-empty intended edit).")
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:"Measure a task's RQ5 accuracy: how often its ground-truth program produces              the intended edit when the neural models are imperfect.")
    Term.(const accuracy $ task_id_arg $ samples $ seed_arg)

(* ---------- objects ---------- *)

let list_objects scenes_dir =
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  List.iter
    (fun (s : Scene.t) ->
      Printf.printf "image %d (%dx%d)
" s.image_id s.width s.height;
      let u = Batch.universe_of_scenes [ s ] in
      List.iteri
        (fun pos id ->
          let e = Imageeye_symbolic.Universe.entity u id in
          let b = e.Imageeye_symbolic.Entity.bbox in
          let extra =
            match e.Imageeye_symbolic.Entity.kind with
            | Imageeye_symbolic.Entity.Face f ->
                Printf.sprintf " faceId=%d smiling=%b eyesOpen=%b age=%d-%d" f.face_id
                  f.smiling f.eyes_open f.age_low f.age_high
            | Imageeye_symbolic.Entity.Text body -> Printf.sprintf " %S" body
            | Imageeye_symbolic.Entity.Thing _ -> ""
          in
          Printf.printf "  #%d %-8s at (%d,%d)-(%d,%d)%s
" pos
            (Imageeye_symbolic.Entity.object_type e)
            b.Imageeye_geometry.Bbox.left b.top b.right b.bottom extra)
        (Imageeye_symbolic.Universe.objects_of_image u s.image_id))
    scenes

let objects_cmd =
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "objects"
       ~doc:"List the detected objects of each image in a dataset directory; the printed              #numbers are what demonstration files refer to.")
    Term.(const list_objects $ scenes)

(* ---------- synthesize ---------- *)

let synthesize_cmd_impl scenes_dir demos_path timeout save =
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  let demos =
    match Imageeye_interact.Demo_io.load demos_path with
    | Ok d -> d
    | Error e -> failwith (Imageeye_interact.Demo_io.error_to_string e)
  in
  let spec =
    match Imageeye_interact.Demo_io.to_spec ~scenes demos with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  match Synthesizer.synthesize ~config spec with
  | Synthesizer.Success (program, stats) ->
      Printf.printf "synthesized in %.2fs: %s
" stats.elapsed_s
        (Lang.program_to_string program);
      Option.iter
        (fun path ->
          save_text path (Lang.program_to_string program);
          Printf.printf "saved to %s
" path)
        save
  | Synthesizer.Timeout _ ->
      Printf.printf "synthesis timed out
";
      exit 1
  | Synthesizer.Exhausted _ ->
      Printf.printf "no program in the search space matches the demonstrations
";
      exit 1

let synthesize_cmd =
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let demos = Arg.(required & opt (some file) None & info [ "demos" ] ~docv:"FILE") in
  let timeout = Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS") in
  let save = Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Learn a program from a demonstration file over a dataset directory.")
    Term.(const synthesize_cmd_impl $ scenes $ demos $ timeout $ save)

(* ---------- explain ---------- *)

let explain_cmd_impl program_path scenes_dir image obj =
  let program = load_program program_path in
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  let scene =
    match List.find_opt (fun (s : Scene.t) -> s.image_id = image) scenes with
    | Some s -> s
    | None -> failwith (Printf.sprintf "no image %d in %s" image scenes_dir)
  in
  let u = Batch.universe_of_scenes [ scene ] in
  let ids = Imageeye_symbolic.Universe.objects_of_image u image in
  match List.nth_opt ids obj with
  | None -> failwith (Printf.sprintf "image %d has only %d objects" image (List.length ids))
  | Some id ->
      List.iteri
        (fun i (extractor, action) ->
          Printf.printf "guarded action %d (%s): %s" (i + 1) (Lang.action_to_string action)
            (Imageeye_core.Explain.explain u extractor id))
        program

let explain_cmd =
  let program = Arg.(required & opt (some file) None & info [ "p"; "program" ] ~docv:"FILE") in
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let image = Arg.(required & opt (some int) None & info [ "image" ] ~docv:"IMAGE-ID") in
  let obj = Arg.(required & opt (some int) None & info [ "object" ] ~docv:"OBJECT-NUMBER") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a program's extractors select or skip one object of one image.")
    Term.(const explain_cmd_impl $ program $ scenes $ image $ obj)

(* ---------- report ---------- *)

let report id images seed timeout out =
  let t = Benchmarks.by_id id in
  let n = Option.value images ~default:24 in
  let dataset = Dataset.generate ~n_images:n ~seed t.Task.domain in
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  let result = Session.run ~config ~dataset t in
  match result.Session.program with
  | None ->
      Printf.printf "task %d failed to synthesize; no report written
" id;
      exit 1
  | Some program ->
      ensure_dir out;
      let entries =
        Imageeye_report.Html_report.generate ~dir:out
          ~title:(Printf.sprintf "Task %d: %s" id t.Task.description)
          ~program dataset.scenes
      in
      let edited =
        List.length (List.filter (fun e -> e.Imageeye_report.Html_report.edited) entries)
      in
      Printf.printf "wrote %s/index.html (%d images, %d edited)
" out (List.length entries)
        edited

let report_cmd =
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size (default 24, kept small for a browsable page).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS")
  in
  let out = Arg.(value & opt string "report" & info [ "o"; "out" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Learn a benchmark task and write an HTML before/after gallery of the batch.")
    Term.(const report $ task_id_arg $ images $ seed_arg $ timeout $ out)

(* ---------- parse ---------- *)

let parse_impl path =
  let p = load_program path in
  Printf.printf "%s\n(size %d)\n" (Lang.program_to_string p) (Lang.program_size p)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "parse" ~doc:"Validate and pretty-print a DSL program file.")
    Term.(const parse_impl $ file)

let () =
  let info =
    Cmd.info "imageeye" ~version:"1.0.0"
      ~doc:"Batch image processing by program synthesis (PLDI 2023 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; objects_cmd; synthesize_cmd; explain_cmd; tasks_cmd; show_cmd;
            learn_cmd; sweep_cmd; apply_cmd; accuracy_cmd; report_cmd; parse_cmd;
          ]))
