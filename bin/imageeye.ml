(* The imageeye command-line interface.

   Subcommands:
     generate   make a synthetic dataset (scene metadata + rendered PPMs)
     objects    list the detected objects of a dataset directory
     synthesize learn a program from a demonstration file
     explain    why a program selects / skips an object
     tasks      list the 50 benchmark tasks
     show       print one benchmark task and its ground-truth program
     learn      run the demonstration loop for a benchmark task
     sweep      run the demonstration loop over many tasks, optionally in parallel
     apply      apply a DSL program file to a dataset directory
     accuracy   measure a task's RQ5 accuracy under the imperfect detector
     report     learn a task and write an HTML before/after gallery
     trend      render PERF_HISTORY.jsonl as a static HTML trend page
     parse      validate and pretty-print a DSL program file
     stream     pipeline a program across a generated mega-corpus (O(window) memory)
     serve      run the persistent synthesis daemon (NDJSON over a socket)
     client     send one request to a running daemon
     loadgen    closed-loop load generator against a running daemon *)

open Cmdliner
module Lang = Imageeye_core.Lang
module Parser = Imageeye_core.Parser
module Synthesizer = Imageeye_core.Synthesizer
module Apply = Imageeye_core.Apply
module Dataset = Imageeye_scene.Dataset
module Scene = Imageeye_scene.Scene
module Scene_io = Imageeye_scene.Scene_io
module Render = Imageeye_scene.Render
module Batch = Imageeye_vision.Batch
module Session = Imageeye_interact.Session
module Benchmarks = Imageeye_tasks.Benchmarks
module Task = Imageeye_tasks.Task
module Ppm = Imageeye_raster.Ppm

let domain_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "wedding" -> Ok Dataset.Wedding
    | "receipts" -> Ok Dataset.Receipts
    | "objects" -> Ok Dataset.Objects
    | other -> Error (`Msg (Printf.sprintf "unknown domain %S (wedding|receipts|objects)" other))
  in
  let print fmt d = Format.pp_print_string fmt (String.lowercase_ascii (Dataset.domain_name d)) in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Dataset generation seed.")

(* mkdir -p: an output path like results/run3/edited should just work. *)
let ensure_dir = Imageeye_util.Fileio.ensure_dir

let save_text path text =
  ensure_dir (Filename.dirname path);
  Imageeye_util.Fileio.write_atomic_string path text

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  match Parser.program (read_file path) with
  | Ok p -> p
  | Error e -> failwith (Printf.sprintf "%s: %s" path (Parser.error_to_string e))

(* ---------- generate ---------- *)

let generate domain count seed out render =
  let count = Option.value count ~default:(Dataset.default_image_count domain) in
  let dataset = Dataset.generate ~n_images:count ~seed domain in
  ensure_dir out;
  Scene_io.save_dataset dataset ~dir:out;
  if render then
    List.iter
      (fun (s : Scene.t) ->
        Ppm.write (Render.scene s) (Filename.concat out (Printf.sprintf "%04d.ppm" s.image_id)))
      dataset.scenes;
  Printf.printf "wrote %d %s scene(s)%s to %s\n" count (Dataset.domain_name dataset.domain)
    (if render then " and rendered PPMs" else "")
    out

let generate_cmd =
  let domain =
    Arg.(required & pos 0 (some domain_conv) None & info [] ~docv:"DOMAIN")
  in
  let count =
    Arg.(value & opt (some int) None & info [ "n"; "count" ] ~docv:"N"
           ~doc:"Number of images (default: the paper's count for the domain).")
  in
  let out = Arg.(value & opt string "dataset" & info [ "o"; "out" ] ~docv:"DIR") in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Also write rendered PPM images.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset for a domain.")
    Term.(const generate $ domain $ count $ seed_arg $ out $ render)

(* ---------- tasks / show ---------- *)

let list_tasks () =
  List.iter
    (fun t ->
      Printf.printf "%2d  %-8s size %2d  %s\n" t.Task.id
        (Dataset.domain_name t.Task.domain) (Task.size t) t.Task.description)
    Benchmarks.all

let tasks_cmd =
  Cmd.v (Cmd.info "tasks" ~doc:"List the 50 benchmark tasks of Appendix B.")
    Term.(const list_tasks $ const ())

let task_id_arg = Arg.(required & pos 0 (some int) None & info [] ~docv:"TASK-ID")

let show id =
  let t = Benchmarks.by_id id in
  Printf.printf "task %d (%s, size %d)\n%s\n%s\n" t.Task.id
    (Dataset.domain_name t.Task.domain) (Task.size t) t.Task.description
    (Lang.program_to_string t.Task.ground_truth)

let show_cmd =
  Cmd.v (Cmd.info "show" ~doc:"Print one benchmark task and its ground truth.")
    Term.(const show $ task_id_arg)

(* ---------- learn ---------- *)

let learn id images seed timeout save =
  let t = Benchmarks.by_id id in
  let n = Option.value images ~default:(Dataset.default_image_count t.Task.domain) in
  let dataset = Dataset.generate ~n_images:n ~seed t.Task.domain in
  Printf.printf "task %d: %s\n" id t.Task.description;
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  let result = Session.run ~config ~dataset t in
  List.iter
    (fun (r : Session.round) ->
      Printf.printf "  round %d: demo image %d, %.2fs -> %s\n" r.round_index r.demo_image
        r.synth_time
        (match r.candidate with Some p -> Lang.program_to_string p | None -> "(failed)"))
    result.Session.rounds;
  match result.Session.program with
  | Some p ->
      Printf.printf "solved with %d demonstration(s): %s\n" result.Session.examples_used
        (Lang.program_to_string p);
      Option.iter
        (fun path ->
          save_text path (Lang.program_to_string p);
          Printf.printf "saved to %s\n" path)
        save
  | None ->
      Printf.printf "FAILED (%s)\n"
        (match result.Session.failure with
        | Some Session.Synth_failed -> "synthesis timed out"
        | Some Session.Rounds_exhausted -> "too many rounds"
        | Some Session.No_useful_image -> "no useful demonstration image"
        | None -> "unknown");
      exit 1

let learn_cmd =
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size (default: the paper's).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-round synthesis timeout.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Write the learned program to FILE.")
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Run the demonstration loop for a benchmark task and print the learned program.")
    Term.(const learn $ task_id_arg $ images $ seed_arg $ timeout $ save)

(* ---------- sweep ---------- *)

let sweep task_ids images seed timeout jobs value_bank fwd_bwd optimal frontier
    ablation json_path min_solved max_mean_size =
  let ablation_tweak =
    match ablation with
    | None -> Fun.id
    | Some name -> (
        match List.assoc_opt name Synthesizer.ablations with
        | Some tweak -> tweak
        | None ->
            Printf.eprintf "error: unknown ablation %S (known: %s)\n%!" name
              (String.concat ", " (List.map fst Synthesizer.ablations));
            exit 2)
  in
  let tasks =
    match task_ids with
    | [] -> Benchmarks.all
    | ids ->
        List.map
          (fun id ->
            match Benchmarks.by_id id with
            | t -> t
            | exception Not_found ->
                failwith (Printf.sprintf "no benchmark task %d (ids run 1-%d)" id Benchmarks.count))
          ids
  in
  let domains = List.sort_uniq compare (List.map (fun t -> t.Task.domain) tasks) in
  (* Build every dataset and batch universe up front: the per-task jobs
     must not race on shared caches once the pool fans out. *)
  let prepared =
    List.map
      (fun domain ->
        let n = Option.value images ~default:(Dataset.default_image_count domain) in
        let dataset = Dataset.generate ~n_images:n ~seed domain in
        let universe = Batch.universe_of_scenes dataset.scenes in
        (domain, (dataset, universe)))
      domains
  in
  let config =
    ablation_tweak
      {
        Synthesizer.default_config with
        timeout_s = timeout;
        value_bank;
        fwd_bwd;
        optimality = optimal;
        optimal_frontier =
          Option.value frontier
            ~default:Synthesizer.default_config.Synthesizer.optimal_frontier;
      }
  in
  let started = Imageeye_util.Clock.counter () in
  let results =
    Imageeye_tasks.Runner.run_tasks ~jobs
      (fun t ->
        let dataset, universe = List.assoc t.Task.domain prepared in
        Session.run ~config ~batch_universe:universe ~dataset t)
      tasks
  in
  let wall = Imageeye_util.Clock.elapsed_s started in
  List.iter
    (fun (t, r) ->
      Printf.printf "%2d  %-8s size %2d  %s  rounds=%d last=%.2fs  %s\n" t.Task.id
        (Dataset.domain_name t.Task.domain) (Task.size t)
        (if r.Session.solved then "solved" else "FAILED")
        r.Session.examples_used r.Session.last_round_time
        (match r.Session.program with
        | Some p -> Lang.program_to_string p
        | None -> "-"))
    results;
  let solved = List.filter (fun (_, r) -> r.Session.solved) results in
  let prune = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun (rd : Session.round) ->
          Option.iter
            (fun (s : Synthesizer.stats) ->
              List.iter
                (fun (label, n) ->
                  Hashtbl.replace prune label
                    (n + Option.value (Hashtbl.find_opt prune label) ~default:0))
                s.Synthesizer.prune_counts)
            rd.synth_stats)
        r.Session.rounds)
    results;
  Printf.printf "solved %d/%d task(s) in %.1fs wall (jobs=%d)\n" (List.length solved)
    (List.length results) wall jobs;
  let all_labels =
    List.sort compare (Hashtbl.fold (fun label n acc -> (label, n) :: acc) prune [])
  in
  let info_labels, labels =
    List.partition (fun (l, _) -> Imageeye_core.Prune.is_info_label l) all_labels
  in
  if labels <> [] then (
    Printf.printf "prune attribution:\n";
    List.iter (fun (label, n) -> Printf.printf "  %-28s %d\n" label n) labels);
  (let get l = Option.value ~default:0 (List.assoc_opt l info_labels) in
   let cache l = get ("eval-cache(" ^ l ^ ")") in
   let memo = cache "memo-hit" and vhit = cache "value-hit" and evaluated = cache "evaluated" in
   let visited = memo + vhit + evaluated in
   if visited > 0 then
     Printf.printf
       "evaluation cache: %d memo hits, %d value hits, %d evaluated (hit rate %.1f%%)\n" memo
       vhit evaluated
       (100.0 *. float_of_int (memo + vhit) /. float_of_int visited);
   let rounds = get "fwd-bwd(iterations)" in
   if rounds > 0 then
     Printf.printf "fwd-bwd analysis: %d rounds, %d hole goals tightened\n" rounds
       (get "fwd-bwd(tightened)");
   let bound = get "cost-bound" in
   if bound > 0 then Printf.printf "optimal search: %d candidates cost-bounded\n" bound);
  let programs = List.filter_map (fun (_, r) -> r.Session.program) results in
  let mean_size =
    if programs = [] then 0.0
    else
      float_of_int (List.fold_left (fun acc p -> acc + Lang.program_size p) 0 programs)
      /. float_of_int (List.length programs)
  in
  if programs <> [] then begin
    let cost =
      List.fold_left
        (fun acc p -> Imageeye_core.Cost.add acc (Imageeye_core.Cost.of_program p))
        Imageeye_core.Cost.zero programs
    in
    Printf.printf "quality: mean program size %.2f over %d program(s), cost total %d\n"
      mean_size (List.length programs)
      (Imageeye_core.Cost.total cost)
  end;
  Option.iter
    (fun path ->
      let open Imageeye_util.Jsonout in
      Imageeye_interact.Sweep_json.write
        ~meta:
          [
            ("bench", Str "imageeye-cli-sweep");
            ("seed", Int seed);
            ("jobs", Int jobs);
            ("timeout_s", Float timeout);
            ("value_bank", Bool value_bank);
            ("fwd_bwd", Bool fwd_bwd);
            ("optimal", Bool config.Synthesizer.optimality);
            ("ablation", match ablation with Some a -> Str a | None -> Str "none");
          ]
        path (List.map snd results);
      Printf.printf "wrote sweep trajectory to %s\n" path)
    json_path;
  (* Smoke gates for CI: fail loudly when the sweep solved too few tasks
     or the solutions ballooned (the optimal-smoke mean-size ceiling). *)
  if List.length solved < min_solved then begin
    Printf.eprintf "error: solved %d task(s), below the --min-solved %d gate\n%!"
      (List.length solved) min_solved;
    exit 1
  end;
  Option.iter
    (fun ceiling ->
      if programs = [] || mean_size > ceiling then begin
        Printf.eprintf
          "error: mean program size %.2f exceeds the --max-mean-size %.2f gate\n%!"
          mean_size ceiling;
        exit 1
      end)
    max_mean_size;
  if solved = [] then exit 1

let sweep_cmd =
  let task_ids =
    Arg.(value & opt (list int) [] & info [ "tasks" ] ~docv:"ID,ID,..."
           ~doc:"Benchmark task ids to run (default: all 50).")
  in
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size per domain (default: the paper's).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-round synthesis timeout.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains to run tasks on in parallel (1 = sequential; size to the              available cores).")
  in
  let value_bank =
    Term.(
      const not
      $ Arg.(value & flag & info [ "no-value-bank" ]
               ~doc:"Disable the bottom-up extractor value bank (pure top-down search)."))
  in
  let fwd_bwd =
    Term.(
      const not
      $ Arg.(value & flag & info [ "no-fwd-bwd" ]
               ~doc:"Disable bidirectional abstract interpretation (iterated              forward-backward goal tightening)."))
  in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Cost-directed optimal synthesis: keep searching past the first              consistent program under an incumbent cost bound and return the              minimal consistent extractor (size, noise sensitivity, lattice              depth, generality).  Same solved set, smaller/more-general              programs, more nodes.")
  in
  let frontier =
    Arg.(value & opt (some int) None & info [ "frontier" ] ~docv:"N"
           ~doc:"Optimal-search improvement budget: candidates generated without              an incumbent improvement before the search settles (default              200000).  Only meaningful with $(b,--optimal).")
  in
  let ablation =
    Arg.(value & opt (some string) None & info [ "ablation" ] ~docv:"NAME"
           ~doc:"Apply a named ablation row from the shared fig16 table (full,              no-goal-inference, no-partial-eval, no-equiv-reduction, no-fwd-bwd,              no-per-image, no-cardinality, no-eval-cache, no-value-bank,              optimal) on top of the other flags.  Unknown names list the table              and exit 2.")
  in
  let json_path =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the per-task sweep trajectory (solved, time, nodes, prune              counters, program quality) as JSON to FILE.")
  in
  let min_solved =
    Arg.(value & opt int 0 & info [ "min-solved" ] ~docv:"N"
           ~doc:"Exit 1 unless at least N tasks were solved (CI smoke gate).")
  in
  let max_mean_size =
    Arg.(value & opt (some float) None & info [ "max-mean-size" ] ~docv:"SIZE"
           ~doc:"Exit 1 if the mean synthesized-program size exceeds SIZE (CI              smoke gate for optimal mode).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run the demonstration loop over many benchmark tasks and summarize, optionally              on a parallel Domain pool.")
    Term.(const sweep $ task_ids $ images $ seed_arg $ timeout $ jobs $ value_bank $ fwd_bwd $ optimal $ frontier $ ablation $ json_path $ min_solved $ max_mean_size)

(* ---------- apply ---------- *)

let apply_cmd_impl program_path scenes_dir out =
  let program = load_program program_path in
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  ensure_dir out;
  List.iter
    (fun (s : Scene.t) ->
      let img = Render.scene s in
      let u = Batch.universe_of_scenes [ s ] in
      let edited = Apply.program u img program in
      Ppm.write edited (Filename.concat out (Printf.sprintf "%04d.ppm" s.image_id)))
    scenes;
  Printf.printf "applied %s to %d image(s); output in %s\n"
    (Lang.program_to_string program)
    (List.length scenes) out

let apply_cmd =
  let program =
    Arg.(required & opt (some file) None & info [ "p"; "program" ] ~docv:"FILE")
  in
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let out = Arg.(value & opt string "edited" & info [ "o"; "out" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a DSL program to every image of a dataset directory.")
    Term.(const apply_cmd_impl $ program $ scenes $ out)

(* ---------- accuracy ---------- *)

let accuracy id samples seed =
  let t = Benchmarks.by_id id in
  let dataset =
    Dataset.generate ~n_images:(Dataset.default_image_count t.Task.domain) ~seed t.Task.domain
  in
  let report =
    Imageeye_interact.Accuracy.evaluate ~noise:Imageeye_vision.Noise.default_imperfect ~seed
      ~samples t.Task.ground_truth dataset
  in
  Printf.printf
    "task %d: intended edit on %d of %d sampled images (%.1f%%) under the imperfect detector
"
    id report.Imageeye_interact.Accuracy.correct report.Imageeye_interact.Accuracy.sampled
    (100.0 *. report.Imageeye_interact.Accuracy.accuracy)

let accuracy_cmd =
  let samples =
    Arg.(value & opt int 20 & info [ "samples" ] ~docv:"N"
           ~doc:"Images to sample (with non-empty intended edit).")
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:"Measure a task's RQ5 accuracy: how often its ground-truth program produces              the intended edit when the neural models are imperfect.")
    Term.(const accuracy $ task_id_arg $ samples $ seed_arg)

(* ---------- objects ---------- *)

let list_objects scenes_dir =
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  List.iter
    (fun (s : Scene.t) ->
      Printf.printf "image %d (%dx%d)
" s.image_id s.width s.height;
      let u = Batch.universe_of_scenes [ s ] in
      List.iteri
        (fun pos id ->
          let e = Imageeye_symbolic.Universe.entity u id in
          let b = e.Imageeye_symbolic.Entity.bbox in
          let extra =
            match e.Imageeye_symbolic.Entity.kind with
            | Imageeye_symbolic.Entity.Face f ->
                Printf.sprintf " faceId=%d smiling=%b eyesOpen=%b age=%d-%d" f.face_id
                  f.smiling f.eyes_open f.age_low f.age_high
            | Imageeye_symbolic.Entity.Text body -> Printf.sprintf " %S" body
            | Imageeye_symbolic.Entity.Thing _ -> ""
          in
          Printf.printf "  #%d %-8s at (%d,%d)-(%d,%d)%s
" pos
            (Imageeye_symbolic.Entity.object_type e)
            b.Imageeye_geometry.Bbox.left b.top b.right b.bottom extra)
        (Imageeye_symbolic.Universe.objects_of_image u s.image_id))
    scenes

let objects_cmd =
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "objects"
       ~doc:"List the detected objects of each image in a dataset directory; the printed              #numbers are what demonstration files refer to.")
    Term.(const list_objects $ scenes)

(* ---------- synthesize ---------- *)

let synthesize_cmd_impl scenes_dir demos_path timeout save =
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  if scenes = [] then failwith (Printf.sprintf "no .scene files in %s" scenes_dir);
  let demos =
    match Imageeye_interact.Demo_io.load demos_path with
    | Ok d -> d
    | Error e -> failwith (Imageeye_interact.Demo_io.error_to_string e)
  in
  let spec =
    match Imageeye_interact.Demo_io.to_spec ~scenes demos with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  match Synthesizer.synthesize ~config spec with
  | Synthesizer.Success (program, stats) ->
      Printf.printf "synthesized in %.2fs: %s
" stats.elapsed_s
        (Lang.program_to_string program);
      Option.iter
        (fun path ->
          save_text path (Lang.program_to_string program);
          Printf.printf "saved to %s
" path)
        save
  | Synthesizer.Timeout _ ->
      Printf.printf "synthesis timed out
";
      exit 1
  | Synthesizer.Exhausted _ ->
      Printf.printf "no program in the search space matches the demonstrations
";
      exit 1

let synthesize_cmd =
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let demos = Arg.(required & opt (some file) None & info [ "demos" ] ~docv:"FILE") in
  let timeout = Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS") in
  let save = Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Learn a program from a demonstration file over a dataset directory.")
    Term.(const synthesize_cmd_impl $ scenes $ demos $ timeout $ save)

(* ---------- explain ---------- *)

let explain_cmd_impl program_path scenes_dir image obj =
  let program = load_program program_path in
  let scenes = Scene_io.load_scenes ~dir:scenes_dir in
  let scene =
    match List.find_opt (fun (s : Scene.t) -> s.image_id = image) scenes with
    | Some s -> s
    | None -> failwith (Printf.sprintf "no image %d in %s" image scenes_dir)
  in
  let u = Batch.universe_of_scenes [ scene ] in
  let ids = Imageeye_symbolic.Universe.objects_of_image u image in
  match List.nth_opt ids obj with
  | None -> failwith (Printf.sprintf "image %d has only %d objects" image (List.length ids))
  | Some id ->
      List.iteri
        (fun i (extractor, action) ->
          Printf.printf "guarded action %d (%s): %s" (i + 1) (Lang.action_to_string action)
            (Imageeye_core.Explain.explain u extractor id))
        program

let explain_cmd =
  let program = Arg.(required & opt (some file) None & info [ "p"; "program" ] ~docv:"FILE") in
  let scenes = Arg.(required & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let image = Arg.(required & opt (some int) None & info [ "image" ] ~docv:"IMAGE-ID") in
  let obj = Arg.(required & opt (some int) None & info [ "object" ] ~docv:"OBJECT-NUMBER") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a program's extractors select or skip one object of one image.")
    Term.(const explain_cmd_impl $ program $ scenes $ image $ obj)

(* ---------- report ---------- *)

let report id images seed timeout out =
  let t = Benchmarks.by_id id in
  let n = Option.value images ~default:24 in
  let dataset = Dataset.generate ~n_images:n ~seed t.Task.domain in
  let config = { Synthesizer.default_config with timeout_s = timeout } in
  let result = Session.run ~config ~dataset t in
  match result.Session.program with
  | None ->
      Printf.printf "task %d failed to synthesize; no report written
" id;
      exit 1
  | Some program ->
      ensure_dir out;
      let entries =
        Imageeye_report.Html_report.generate ~dir:out
          ~title:(Printf.sprintf "Task %d: %s" id t.Task.description)
          ~program dataset.scenes
      in
      let edited =
        List.length (List.filter (fun e -> e.Imageeye_report.Html_report.edited) entries)
      in
      Printf.printf "wrote %s/index.html (%d images, %d edited)
" out (List.length entries)
        edited

let report_cmd =
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size (default 24, kept small for a browsable page).")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS")
  in
  let out = Arg.(value & opt string "report" & info [ "o"; "out" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Learn a benchmark task and write an HTML before/after gallery of the batch.")
    Term.(const report $ task_id_arg $ images $ seed_arg $ timeout $ out)

(* ---------- trend ---------- *)

let trend history out =
  match Imageeye_report.Trend.write ~history ~out with
  | Ok n -> Printf.printf "wrote %s (%d history row(s))\n" out n
  | Error msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1

let trend_cmd =
  let history =
    Arg.(value & opt string "PERF_HISTORY.jsonl" & info [ "history" ] ~docv:"FILE"
           ~doc:"Perf-history JSONL file written by bench/main.exe --append.")
  in
  let out =
    Arg.(value & opt string "trend.html" & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Output HTML file (self-contained; inline SVG, no scripts).")
  in
  Cmd.v
    (Cmd.info "trend"
       ~doc:"Render the per-commit perf history as a static HTML trend page (per-mode              node/solved charts and a per-commit table).")
    Term.(const trend $ history $ out)

(* ---------- parse ---------- *)

let parse_impl path =
  let p = load_program path in
  Printf.printf "%s\n(size %d)\n" (Lang.program_to_string p) (Lang.program_size p)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "parse" ~doc:"Validate and pretty-print a DSL program file.")
    Term.(const parse_impl $ file)

(* ---------- serve / client / loadgen ---------- *)

module Serve = Imageeye_serve.Server
module Router = Imageeye_serve.Router
module Client = Imageeye_serve.Client
module Protocol = Imageeye_serve.Protocol
module Metrics = Imageeye_serve.Metrics
module Demo_io = Imageeye_interact.Demo_io
module Edit = Imageeye_core.Edit
module J = Imageeye_util.Jsonout
module Jsonin = Imageeye_util.Jsonin
module Clock = Imageeye_util.Clock

let socket_arg =
  Arg.(value & opt string "imageeye.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path (ignored when --port is given).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Listen/connect on TCP 127.0.0.1:PORT instead of a unix socket.")

let serve socket port jobs timeout max_rounds quiet max_line_bytes read_timeout max_conns
    state_dir snapshot_interval =
  let endpoint =
    match port with Some p -> Serve.Tcp p | None -> Serve.Unix_socket socket
  in
  if max_line_bytes < 2 then failwith "need --max-line-bytes >= 2";
  if max_conns < 1 then failwith "need --max-conns >= 1";
  if read_timeout < 0.0 then failwith "need --read-timeout >= 0 (0 disables)";
  if snapshot_interval <= 0.0 then failwith "need --snapshot-interval > 0";
  Serve.run
    {
      endpoint;
      jobs;
      default_timeout_s = timeout;
      max_rounds;
      quiet;
      max_line_bytes;
      read_timeout_s = (if read_timeout = 0.0 then None else Some read_timeout);
      max_connections = max_conns;
      state_dir;
      snapshot_interval_s = snapshot_interval;
    }

let serve_cmd =
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains draining the admission queue.")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Default per-request deadline (requests may carry their own timeout_s).")
  in
  let max_rounds =
    Arg.(value & opt int 10 & info [ "max-rounds" ] ~docv:"N"
           ~doc:"Interaction-round cap per session.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-connection logs.") in
  (* Hostile-input limits; each also reads an IMAGEEYE_* variable, and a
     malformed value fails startup loudly (cmdliner rejects it) rather
     than silently serving with defaults. *)
  let max_line_bytes =
    Arg.(value
         & opt int Serve.default_config.max_line_bytes
         & info [ "max-line-bytes" ] ~docv:"BYTES"
             ~env:(Cmd.Env.info "IMAGEEYE_MAX_LINE_BYTES")
             ~doc:"Longest accepted request line; anything longer gets a structured              line-too-long error and a closed connection.")
  in
  let read_timeout =
    Arg.(value
         & opt float (Option.value Serve.default_config.read_timeout_s ~default:0.0)
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~env:(Cmd.Env.info "IMAGEEYE_READ_TIMEOUT")
             ~doc:"Mid-frame read deadline per connection: a request line dripping in              slower than this is dropped with read-timeout.  Idle connections              between requests are never timed out.  0 disables.")
  in
  let max_conns =
    Arg.(value
         & opt int Serve.default_config.max_connections
         & info [ "max-conns" ] ~docv:"N"
             ~env:(Cmd.Env.info "IMAGEEYE_MAX_CONNS")
             ~doc:"Connection admission cap; excess connections are shed with one              overloaded error line.")
  in
  let state_dir =
    Arg.(value
         & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~env:(Cmd.Env.info "IMAGEEYE_STATE_DIR")
             ~doc:"Durable warm state: restore value banks from DIR on boot (a corrupt              snapshot is loudly rejected and the daemon starts cold) and snapshot              them periodically and on SIGTERM.  The directory is exclusively locked;              a second daemon fails with state-dir-locked.")
  in
  let snapshot_interval =
    Arg.(value
         & opt float Serve.default_config.snapshot_interval_s
         & info [ "snapshot-interval" ] ~docv:"SECONDS"
             ~doc:"Periodic snapshot cadence under --state-dir.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent synthesis daemon: newline-delimited JSON requests over a              unix-domain or TCP socket, synthesis on a worker Domain pool with warm              cross-request value banks.  --state-dir makes the warmth survive restarts.              SIGTERM drains gracefully, snapshots state and dumps metrics.")
    Term.(const serve $ socket_arg $ port_arg $ jobs $ timeout $ max_rounds $ quiet
          $ max_line_bytes $ read_timeout $ max_conns $ state_dir $ snapshot_interval)

(* Worker/endpoint specs: "unix:PATH", "tcp:PORT" (loopback),
   "tcp:HOST:PORT", or a bare unix-socket path. *)
let parse_endpoint_spec s =
  let port_of p =
    match int_of_string_opt p with
    | Some n when n > 0 && n < 65536 -> n
    | _ -> failwith (Printf.sprintf "bad port in endpoint spec %S" s)
  in
  match String.split_on_char ':' s with
  | [ "unix"; path ] -> Client.Unix_socket path
  | [ "tcp"; port ] -> Client.Tcp ("127.0.0.1", port_of port)
  | [ "tcp"; host; port ] -> Client.Tcp (host, port_of port)
  | [ _ ] -> Client.Unix_socket s
  | _ -> failwith (Printf.sprintf "bad endpoint spec %S (unix:PATH | tcp:[HOST:]PORT)" s)

let router socket port workers quiet max_line_bytes read_timeout max_conns inflight retry_dead
    =
  let endpoint =
    match port with Some p -> Serve.Tcp p | None -> Serve.Unix_socket socket
  in
  if workers = [] then failwith "router needs at least one --worker";
  if inflight < 1 then failwith "need --worker-inflight >= 1";
  if retry_dead <= 0.0 then failwith "need --retry-dead > 0";
  if max_line_bytes < 2 then failwith "need --max-line-bytes >= 2";
  if max_conns < 1 then failwith "need --max-conns >= 1";
  if read_timeout < 0.0 then failwith "need --read-timeout >= 0 (0 disables)";
  Router.run
    {
      endpoint;
      workers = List.map parse_endpoint_spec workers;
      quiet;
      max_line_bytes;
      read_timeout_s = (if read_timeout = 0.0 then None else Some read_timeout);
      max_connections = max_conns;
      worker_inflight = inflight;
      retry_dead_s = retry_dead;
    }

let router_cmd =
  let socket =
    Arg.(value & opt string "imageeye-router.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the router listens on (ignored with --port).")
  in
  let workers =
    Arg.(value & opt_all string [] & info [ "w"; "worker" ] ~docv:"SPEC"
           ~doc:"A worker daemon endpoint (repeatable): unix:PATH, tcp:PORT,              tcp:HOST:PORT, or a bare socket path.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-connection logs.") in
  let max_line_bytes =
    Arg.(value & opt int Router.default_config.Router.max_line_bytes
         & info [ "max-line-bytes" ] ~docv:"BYTES")
  in
  let read_timeout =
    Arg.(value
         & opt float (Option.value Router.default_config.Router.read_timeout_s ~default:0.0)
         & info [ "read-timeout" ] ~docv:"SECONDS")
  in
  let max_conns =
    Arg.(value & opt int Router.default_config.Router.max_connections
         & info [ "max-conns" ] ~docv:"N")
  in
  let inflight =
    Arg.(value & opt int Router.default_config.Router.worker_inflight
         & info [ "worker-inflight" ] ~docv:"N"
           ~doc:"In-flight request cap per worker; further requests wait (backpressure).")
  in
  let retry_dead =
    Arg.(value & opt float Router.default_config.Router.retry_dead_s
         & info [ "retry-dead" ] ~docv:"SECONDS"
           ~doc:"How soon a lost worker is probed again.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:"Shard requests across several imageeye daemons by consistent-hashing the              scene batch (the unit of value-bank warmth), with session-id rewriting,              aggregated metrics fan-in, and re-hash-to-survivors on worker loss.")
    Term.(const router $ socket $ port_arg $ workers $ quiet $ max_line_bytes $ read_timeout
          $ max_conns $ inflight $ retry_dead)

let client_endpoint socket port =
  match port with
  | Some p -> Client.Tcp ("127.0.0.1", p)
  | None -> Client.Unix_socket socket

(* One response, pretty-printed; exit 1 unless ok (and, for synthesize,
   unless the outcome is success — scripts grep less that way). *)
let run_client_request endpoint request =
  let c = Client.connect_retry endpoint in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.rpc c request with
      | Error msg -> failwith msg
      | Ok response ->
          print_string (J.to_string response);
          if not (Client.is_ok response) then exit 1)

let client socket port op program_file scenes_dir demos_file timeout task images seed
    optimal stream_domain stream_frames stream_window =
  let endpoint = client_endpoint socket port in
  let need what = function
    | Some v -> v
    | None -> failwith (Printf.sprintf "client %s requires %s" op what)
  in
  match op with
  | "ping" -> run_client_request endpoint Protocol.Ping
  | "metrics" -> run_client_request endpoint Protocol.Metrics
  | "shutdown" -> run_client_request endpoint Protocol.Shutdown
  | "raw" ->
      (* Adversarial probe: ship stdin verbatim as one request line and
         print the daemon's structured answer.  Stdin, not argv — probe
         payloads (multi-megabyte lines, nesting bombs) blow past the
         kernel's argument-length limit. *)
      let payload = In_channel.input_all In_channel.stdin in
      if String.trim payload = "" then failwith "client raw reads the request line from stdin";
      let c = Client.connect_retry endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.rpc_raw c payload with
          | Error msg -> failwith msg
          | Ok response ->
              print_string (J.to_string response);
              if not (Client.is_ok response) then exit 1)
  | "synthesize" ->
      let scenes = Scene_io.load_scenes ~dir:(need "--scenes" scenes_dir) in
      if scenes = [] then failwith "no .scene files in the scenes directory";
      let demos =
        match Demo_io.load (need "--demos" demos_file) with
        | Ok d -> d
        | Error e -> failwith (Demo_io.error_to_string e)
      in
      run_client_request endpoint
        (Protocol.Synthesize { scenes; demos; timeout_s = timeout; optimal })
  | "apply" ->
      let program = load_program (need "--program" program_file) in
      let scenes = Scene_io.load_scenes ~dir:(need "--scenes" scenes_dir) in
      if scenes = [] then failwith "no .scene files in the scenes directory";
      run_client_request endpoint (Protocol.Apply { program; scenes })
  | "stream-apply" ->
      let program = load_program (need "--program" program_file) in
      let domain = need "--domain" stream_domain in
      run_client_request endpoint
        (Protocol.Stream_apply
           { program; domain; seed; frames = stream_frames; window = stream_window })
  | "session" ->
      (* Drive the interactive loop end to end over the wire. *)
      let c = Client.connect_retry endpoint in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rpc request =
            match Client.rpc c request with
            | Error msg -> failwith msg
            | Ok r ->
                if not (Client.is_ok r) then
                  failwith (Printf.sprintf "server error: %s" (J.to_line r));
                r
          in
          let opened =
            rpc
              (Protocol.Session_open
                 { task_id = need "--task" task; images; seed })
          in
          let session =
            match Option.bind (Jsonin.member "session" opened) Jsonin.to_int_opt with
            | Some s -> s
            | None -> failwith "session-open response carries no session id"
          in
          Printf.printf "session %d opened: %s\n" session
            (Option.value ~default:""
               (Option.bind (Jsonin.member "description" opened) Jsonin.to_string_opt));
          let status_of r =
            Option.value ~default:"?"
              (Option.bind (Jsonin.member "status" r) Jsonin.to_string_opt)
          in
          let rec rounds () =
            let r = rpc (Protocol.Session_round { session; timeout_s = timeout }) in
            (match Option.bind (Jsonin.member "round" r) Jsonin.to_int_opt with
            | Some n ->
                Printf.printf "  round %d: demo image %s -> %s\n" n
                  (match Option.bind (Jsonin.member "demo_image" r) Jsonin.to_int_opt with
                  | Some i -> string_of_int i
                  | None -> "?")
                  (match Option.bind (Jsonin.member "candidate" r) Jsonin.to_string_opt with
                  | Some p -> p
                  | None -> "(failed)")
            | None -> ());
            match status_of r with
            | "awaiting-round" -> rounds ()
            | status -> (status, r)
          in
          let status, last = rounds () in
          ignore (rpc (Protocol.Session_close { session }));
          match status with
          | "solved" ->
              Printf.printf "solved: %s\n"
                (Option.value ~default:"?"
                   (Option.bind (Jsonin.member "program" last) Jsonin.to_string_opt))
          | status ->
              Printf.printf "finished: %s\n" status;
              exit 1)
  | other -> failwith (Printf.sprintf "unknown client op %S" other)

let client_cmd =
  let op =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP"
           ~doc:"One of ping, metrics, shutdown, synthesize, apply, stream-apply, session,              raw (sends stdin verbatim as one request line).")
  in
  let program = Arg.(value & opt (some file) None & info [ "p"; "program" ] ~docv:"FILE") in
  let scenes = Arg.(value & opt (some dir) None & info [ "scenes" ] ~docv:"DIR") in
  let demos = Arg.(value & opt (some file) None & info [ "demos" ] ~docv:"FILE") in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline sent with the request.")
  in
  let task = Arg.(value & opt (some int) None & info [ "task" ] ~docv:"TASK-ID") in
  let images = Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N") in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Ask the daemon for the minimal-cost consistent program (synthesize op).")
  in
  let stream_domain =
    Arg.(value & opt (some domain_conv) None & info [ "domain" ] ~docv:"DOMAIN"
           ~doc:"Corpus domain (stream-apply op).")
  in
  let stream_frames =
    Arg.(value & opt int 10_000 & info [ "frames" ] ~docv:"N"
           ~doc:"Corpus frames (stream-apply op).")
  in
  let stream_window =
    Arg.(value & opt int 256 & info [ "window" ] ~docv:"W"
           ~doc:"Universe-cache window (stream-apply op).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running imageeye daemon and print the JSON response.")
    Term.(const client $ socket_arg $ port_arg $ op $ program $ scenes $ demos $ timeout
          $ task $ images $ seed_arg $ optimal $ stream_domain $ stream_frames
          $ stream_window)

(* Build the synthesize payload the load generator replays: the paper's
   demonstration for [task] — the ground-truth edit on the useful image
   with the fewest objects — over a generated dataset. *)
let loadgen_payload task_id images demo_images seed =
  let task = Benchmarks.by_id task_id in
  let n = Option.value images ~default:8 in
  let dataset = Dataset.generate ~n_images:n ~seed task.Task.domain in
  let u = Batch.universe_of_scenes dataset.Dataset.scenes in
  let gt = Edit.induced_by_program u task.Task.ground_truth in
  let weight (s : Scene.t) =
    List.length (Imageeye_symbolic.Universe.objects_of_image u s.image_id)
  in
  let useful =
    List.filter
      (fun (s : Scene.t) ->
        List.exists
          (fun id -> Edit.actions_of gt id <> [])
          (Imageeye_symbolic.Universe.objects_of_image u s.image_id))
      dataset.Dataset.scenes
  in
  if useful = [] then
    failwith
      (Printf.sprintf "task %d edits nothing on a %d-image seed-%d dataset" task_id n seed);
  (* Sparsest useful images first — one demo mirrors the session loop's
     opening round; more demos mimic its later, harder rounds. *)
  let chosen =
    List.filteri
      (fun i _ -> i < demo_images)
      (List.stable_sort (fun a b -> compare (weight a) (weight b)) useful)
  in
  let demo_of (s : Scene.t) =
    let edits =
      List.concat
        (List.mapi
           (fun pos id -> List.map (fun a -> (pos, a)) (Edit.actions_of gt id))
           (Imageeye_symbolic.Universe.objects_of_image u s.image_id))
    in
    { Demo_io.image_id = s.Scene.image_id; edits }
  in
  (chosen, List.map demo_of chosen, task.Task.ground_truth)

let response_outcome r =
  Option.value ~default:"?" (Option.bind (Jsonin.member "outcome" r) Jsonin.to_string_opt)

let response_stat r key =
  Option.bind (Jsonin.member "stats" r) (fun st ->
      Option.bind (Jsonin.member key st) Jsonin.to_int_opt)

let response_prune_count r label =
  Option.bind (Jsonin.member "stats" r) (fun st ->
      Option.bind (Jsonin.member "prune_counts" st) (fun pc ->
          Option.bind (Jsonin.member label pc) Jsonin.to_int_opt))

type loadgen_sample = {
  index : int;
  op : string;
  latency_s : float;
  outcome : string;
  nodes : int option;
  bank_hits : int option;
}

let loadgen socket port endpoints concurrency requests task images demo_images seed timeout
    expect_warm ops_spec =
  if requests < 1 then failwith "need --requests >= 1";
  if concurrency < 1 then failwith "need --concurrency >= 1";
  if demo_images < 1 then failwith "need --demo-images >= 1";
  let endpoints =
    match endpoints with
    | [] -> [| client_endpoint socket port |]
    | specs -> Array.of_list (List.map parse_endpoint_spec specs)
  in
  let ops =
    match String.split_on_char ',' ops_spec |> List.map String.trim with
    | [] -> failwith "need --ops"
    | ops ->
        List.iter
          (fun o ->
            if o <> "synthesize" && o <> "apply" then
              failwith (Printf.sprintf "unknown op %S in --ops (synthesize | apply)" o))
          ops;
        Array.of_list ops
  in
  let scenes, demos, ground_truth = loadgen_payload task images demo_images seed in
  (* Deterministic op mix: request i carries ops[i mod |ops|], so runs
     are reproducible and every op sees both cold and warm requests. *)
  let request_of_op = function
    | "apply" -> Protocol.Apply { program = ground_truth; scenes }
    | _ -> Protocol.Synthesize { scenes; demos; timeout_s = timeout; optimal = false }
  in
  let op_of_index i = ops.(i mod Array.length ops) in
  let samples = Array.make requests None in
  let errors = ref [] in
  let next = ref 0 in
  let lock = Mutex.create () in
  let take () =
    Mutex.lock lock;
    let i = !next in
    if i < requests then incr next;
    Mutex.unlock lock;
    if i < requests then Some i else None
  in
  let worker endpoint () =
    (* Connect with bounded backoff, and on a mid-run transport failure
       (daemon restarted, EPIPE, connection shed) reconnect and retry
       the request a bounded number of times before counting it lost. *)
    let c = ref (Client.connect_retry endpoint) in
    let reconnect () =
      Client.close !c;
      c := Client.connect_retry endpoint
    in
    Fun.protect
      ~finally:(fun () -> Client.close !c)
      (fun () ->
        let rec rpc_with_retry request tries =
          match Client.rpc !c request with
          | Ok r -> Ok r
          | Error msg ->
              if tries >= 3 then Error msg
              else (
                (match reconnect () with
                | () -> ()
                | exception Unix.Unix_error (e, _, _) ->
                    failwith (Printf.sprintf "reconnect failed: %s" (Unix.error_message e)));
                rpc_with_retry request (tries + 1))
        in
        let rec loop () =
          match take () with
          | None -> ()
          | Some i ->
              let op = op_of_index i in
              let t0 = Clock.counter () in
              (match rpc_with_retry (request_of_op op) 1 with
              | Error msg ->
                  Mutex.lock lock;
                  errors := Printf.sprintf "request %d: %s" i msg :: !errors;
                  Mutex.unlock lock
              | Ok r ->
                  let outcome =
                    if not (Client.is_ok r) then "error:" ^ J.to_line r
                    else if op = "apply" then "success"  (* apply has no outcome field *)
                    else response_outcome r
                  in
                  samples.(i) <-
                    Some
                      {
                        index = i;
                        op;
                        latency_s = Clock.elapsed_s t0;
                        outcome;
                        nodes = response_stat r "nodes";
                        bank_hits = response_prune_count r "value-bank(hit)";
                      });
              loop ()
        in
        loop ())
  in
  let started = Clock.counter () in
  let threads =
    List.init (min concurrency requests) (fun t ->
        Thread.create (worker endpoints.(t mod Array.length endpoints)) ())
  in
  List.iter Thread.join threads;
  let wall = Clock.elapsed_s started in
  let done_ = List.filter_map Fun.id (Array.to_list samples) in
  let by_outcome o = List.length (List.filter (fun s -> s.outcome = o) done_) in
  let failures =
    List.filter (fun s -> s.outcome <> "success" && s.outcome <> "timeout") done_
  in
  (* Nearest-rank percentiles with exactly the serving tier's semantics
     (Metrics.quantile), overall and per op. *)
  let sorted_latencies samples =
    let arr = Array.of_list (List.map (fun s -> s.latency_s) samples) in
    Array.sort compare arr;
    arr
  in
  let all_sorted = sorted_latencies done_ in
  Printf.printf
    "loadgen: %d request(s), concurrency %d: %d success, %d timeout, %d failed, %d transport error(s)\n"
    requests concurrency (by_outcome "success") (by_outcome "timeout") (List.length failures)
    (List.length !errors);
  Printf.printf "  wall %.2fs  throughput %.1f req/s  p50 %.4fs  p95 %.4fs  p99 %.4fs\n" wall
    (float_of_int (List.length done_) /. wall)
    (Metrics.quantile all_sorted 0.50) (Metrics.quantile all_sorted 0.95)
    (Metrics.quantile all_sorted 0.99);
  Array.iter
    (fun op ->
      let of_op = List.filter (fun s -> s.op = op) done_ in
      if of_op <> [] then begin
        let sorted = sorted_latencies of_op in
        Printf.printf "  %s: %d sample(s)  p50 %.4fs  p95 %.4fs  p99 %.4fs\n" op
          (List.length of_op) (Metrics.quantile sorted 0.50) (Metrics.quantile sorted 0.95)
          (Metrics.quantile sorted 0.99)
      end)
    ops;
  List.iter (fun m -> Printf.eprintf "  transport error: %s\n" m) !errors;
  let synth_ordered =
    List.sort (fun a b -> compare a.index b.index)
      (List.filter (fun s -> s.op = "synthesize") done_)
  in
  (match (synth_ordered, List.rev synth_ordered) with
  | first :: _, last :: _ when first.index <> last.index ->
      let show = function Some n -> string_of_int n | None -> "?" in
      Printf.printf
        "  cold request: %d nodes; warm request: %d nodes (value-bank hits %s)\n"
        (Option.value first.nodes ~default:0)
        (Option.value last.nodes ~default:0)
        (show last.bank_hits);
      if expect_warm then begin
        (match (first.nodes, last.nodes) with
        | Some cold, Some warm when warm < cold ->
            Printf.printf "  warm check OK: %d < %d nodes\n" warm cold
        | cold, warm ->
            Printf.eprintf "  warm check FAILED: cold=%s warm=%s\n"
              (show cold) (show warm);
            exit 1);
        match last.bank_hits with
        | Some hits when hits > 0 -> Printf.printf "  warm bank hits OK: %d\n" hits
        | hits ->
            Printf.eprintf "  warm check FAILED: no value-bank hits (%s)\n" (show hits);
            exit 1
      end
  | _ -> ());
  if !errors <> [] || failures <> [] || List.length done_ <> requests then exit 1

(* ---------- stream ---------- *)

let stream_report_json (r : Imageeye_corpus.Stream.report) =
  let repair_json (rep : Imageeye_corpus.Stream.repair) =
    J.Obj
      [
        ("at_frame", J.Int rep.at_frame);
        ("rounds_warm", J.Int rep.rounds_warm);
        ("nodes_warm", J.Int rep.nodes_warm);
        ("warm_time_s", J.Float rep.warm_time_s);
        ("nodes_cold", match rep.nodes_cold with Some n -> J.Int n | None -> J.Null);
        ("cold_time_s", match rep.cold_time_s with Some t -> J.Float t | None -> J.Null);
        ("cold_solved", J.Bool rep.cold_solved);
        ("repaired", J.Str (Lang.program_to_string rep.repaired));
      ]
  in
  J.Obj
    [
      ("frames_requested", J.Int r.frames_requested);
      ("frames_done", J.Int r.frames_done);
      ("window", J.Int r.window);
      ("edits", J.Int r.edits);
      ("mismatched_frames", J.Int r.mismatched_frames);
      ("repairs", J.List (List.map repair_json r.repairs));
      ("repair_failed", J.Bool r.repair_failed);
      ( "bootstrap",
        match r.bootstrap_info with
        | None -> J.Null
        | Some b ->
            J.Obj
              [
                ("demos", J.List (List.map (fun i -> J.Int i) b.demo_trajectory));
                ("nodes", J.Int b.nodes_bootstrap);
                ("time_s", J.Float b.bootstrap_time_s);
              ] );
      ("program", J.Str (Lang.program_to_string r.program));
      ("elapsed_s", J.Float r.elapsed_s);
      ("images_per_s", J.Float r.images_per_s);
      ("peak_live_universes", J.Int r.peak_live_universes);
      ("universes_built", J.Int r.universes_built);
      ("peak_rss_kb", match r.peak_rss_kb with Some kb -> J.Int kb | None -> J.Null);
      ("edit_digest", J.Str (Digest.to_hex r.edit_digest));
    ]

let stream task_id program_path domain frames window seed bootstrap timeout max_repairs
    no_cold_compare budget json_path expect_repair expect_warm_cheaper max_live =
  let config =
    {
      Imageeye_corpus.Stream.window;
      bootstrap_frames = bootstrap;
      max_repairs;
      cold_compare = not no_cold_compare;
      synth_timeout_s = timeout;
      time_budget_s = budget;
    }
  in
  let report =
    match (task_id, program_path) with
    | Some id, None ->
        let task =
          match Benchmarks.by_id id with
          | t -> t
          | exception Not_found -> failwith (Printf.sprintf "unknown task id %d" id)
        in
        let corpus =
          Imageeye_corpus.Corpus.make ~domain:task.Task.domain ~seed ~frames
        in
        Printf.printf "task %d (%s): bootstrapping from a %d-frame prefix...\n%!" id
          task.Task.description bootstrap;
        (match Imageeye_corpus.Stream.run ~config ~corpus task with
        | Ok r -> r
        | Error msg -> failwith msg)
    | None, Some path ->
        let domain =
          match domain with
          | Some d -> d
          | None -> failwith "--program needs --domain (wedding|receipts|objects)"
        in
        let corpus = Imageeye_corpus.Corpus.make ~domain ~seed ~frames in
        Imageeye_corpus.Stream.apply ~config ~corpus (load_program path)
    | Some _, Some _ -> failwith "give either --task or --program, not both"
    | None, None -> failwith "give --task ID or --program FILE"
  in
  (match report.bootstrap_info with
  | None -> ()
  | Some b ->
      Printf.printf "bootstrap: %d demo(s), %d nodes, %.2fs\n"
        (List.length b.demo_trajectory) b.nodes_bootstrap b.bootstrap_time_s);
  Printf.printf "streamed %d/%d frames in %.2fs (%.0f images/s)\n" report.frames_done
    report.frames_requested report.elapsed_s report.images_per_s;
  Printf.printf "edits: %d across %d window(s); %d mismatched frame(s)\n" report.edits
    (List.length report.per_window_edits)
    report.mismatched_frames;
  Printf.printf "universes: peak live %d (window %d), built %d%s\n"
    report.peak_live_universes report.window report.universes_built
    (match report.peak_rss_kb with
    | Some kb -> Printf.sprintf "; peak RSS %.1f MB" (float_of_int kb /. 1024.0)
    | None -> "");
  List.iter
    (fun (rep : Imageeye_corpus.Stream.repair) ->
      Printf.printf "repair @%d: %d warm round(s), %d nodes, %.2fs%s\n" rep.at_frame
        rep.rounds_warm rep.nodes_warm rep.warm_time_s
        (match (rep.nodes_cold, rep.cold_time_s) with
        | Some n, Some t ->
            Printf.sprintf " (cold restart: %d nodes, %.2fs%s)" n t
              (if rep.cold_solved then "" else ", unsolved")
        | _ -> ""))
    report.repairs;
  if report.repair_failed then Printf.printf "a repair attempt FAILED to re-synthesize\n";
  Printf.printf "deployed program: %s\n" (Lang.program_to_string report.program);
  Printf.printf "edit digest: %s\n" (Digest.to_hex report.edit_digest);
  (match json_path with
  | None -> ()
  | Some path ->
      J.write_file path (stream_report_json report);
      Printf.printf "wrote %s\n" path);
  let failed = ref false in
  let gate ok msg = if not ok then (Printf.eprintf "gate FAILED: %s\n" msg; failed := true) in
  if expect_repair then
    gate (report.repairs <> []) "expected at least one mid-stream repair, saw none";
  if expect_warm_cheaper then begin
    let compared =
      List.filter (fun (r : Imageeye_corpus.Stream.repair) -> r.nodes_cold <> None)
        report.repairs
    in
    gate (compared <> []) "expected a cold-compared repair to check warm < cold against";
    List.iter
      (fun (r : Imageeye_corpus.Stream.repair) ->
        match r.nodes_cold with
        | Some cold ->
            gate (r.nodes_warm < cold)
              (Printf.sprintf "repair @%d: warm %d nodes not < cold %d" r.at_frame
                 r.nodes_warm cold)
        | None -> ())
      compared
  end;
  (match max_live with
  | None -> ()
  | Some n ->
      gate
        (report.peak_live_universes <= n)
        (Printf.sprintf "peak live universes %d exceeds --max-live %d"
           report.peak_live_universes n));
  if !failed then exit 1

let stream_cmd =
  let task = Arg.(value & opt (some int) None & info [ "task" ] ~docv:"ID"
                    ~doc:"Benchmark task to bootstrap from the corpus prefix and keep                          repaired against its ground truth (simulated user).") in
  let program = Arg.(value & opt (some string) None & info [ "program" ] ~docv:"FILE"
                       ~doc:"Stream a fixed DSL program file instead (no repairs).") in
  let domain = Arg.(value & opt (some domain_conv) None & info [ "domain" ] ~docv:"DOMAIN"
                      ~doc:"Corpus domain, required with --program (with --task the                            task's own domain is used).") in
  let frames = Arg.(value & opt int 100_000 & info [ "frames" ] ~docv:"N"
                      ~doc:"Corpus length in frames.") in
  let window = Arg.(value & opt int 256 & info [ "window" ] ~docv:"W"
                      ~doc:"Universe-cache window: at most W frame universes stay interned.") in
  let bootstrap = Arg.(value & opt int 24 & info [ "bootstrap" ] ~docv:"B"
                         ~doc:"Prefix frames the initial program is synthesized from.") in
  let timeout = Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECS"
                       ~doc:"Per-synthesis-call timeout.") in
  let max_repairs = Arg.(value & opt int 4 & info [ "max-repairs" ] ~docv:"N") in
  let no_cold = Arg.(value & flag & info [ "no-cold-compare" ]
                       ~doc:"Skip the cold-restart measurement at each repair.") in
  let budget = Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECS"
                      ~doc:"Stop streaming early after this much wall time.") in
  let json_path = Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE") in
  let expect_repair = Arg.(value & flag & info [ "expect-repair" ]
                             ~doc:"Exit 1 unless at least one mid-stream repair happened.") in
  let expect_warm = Arg.(value & flag & info [ "expect-warm-cheaper" ]
                           ~doc:"Exit 1 unless every cold-compared repair spent strictly                                 fewer warm nodes than its cold restart.") in
  let max_live = Arg.(value & opt (some int) None & info [ "max-live" ] ~docv:"N"
                        ~doc:"Exit 1 when the peak interned-universe count exceeds N.") in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Stream a program across a generated mega-corpus with O(window) memory,             repairing it mid-stream from warm banks when a counterexample appears.")
    Term.(const stream $ task $ program $ domain $ frames $ window $ seed_arg $ bootstrap
          $ timeout $ max_repairs $ no_cold $ budget $ json_path $ expect_repair
          $ expect_warm $ max_live)

let loadgen_cmd =
  let concurrency =
    Arg.(value & opt int 4 & info [ "c"; "concurrency" ] ~docv:"N"
           ~doc:"Closed-loop client threads, one connection each.")
  in
  let requests =
    Arg.(value & opt int 16 & info [ "m"; "requests" ] ~docv:"M"
           ~doc:"Total requests across all clients.")
  in
  let task =
    Arg.(value & opt int 1 & info [ "task" ] ~docv:"TASK-ID"
           ~doc:"Benchmark task whose demonstration is replayed.")
  in
  let images =
    Arg.(value & opt (some int) None & info [ "n"; "images" ] ~docv:"N"
           ~doc:"Dataset size the demonstration is drawn from (default 8).")
  in
  let demo_images =
    Arg.(value & opt int 1 & info [ "demo-images" ] ~docv:"K"
           ~doc:"Demonstrated images per request; more demos constrain the spec harder              (useful for timeout probes).")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline sent with each request.")
  in
  let expect_warm =
    Arg.(value & flag & info [ "expect-warm" ]
           ~doc:"Fail unless the last synthesize request is cheaper than the first (fewer              stats.nodes) and reports warm value-bank hits.")
  in
  let endpoints =
    Arg.(value & opt_all string [] & info [ "e"; "endpoint" ] ~docv:"SPEC"
           ~doc:"Target endpoint (repeatable): unix:PATH, tcp:[HOST:]PORT, or a bare              socket path.  Client threads round-robin across the given endpoints              (drive several daemons, or a router, at once).  Overrides              --socket/--port.")
  in
  let ops =
    Arg.(value & opt string "synthesize" & info [ "ops" ] ~docv:"LIST"
           ~doc:"Comma-separated op mix (synthesize, apply); request i carries op              i mod |ops|.  Percentiles are reported per op.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator: replay one task's requests against running              daemons (or a router) and report throughput, p50/p95/p99 latency per op              and warm-bank speedup.")
    Term.(const loadgen $ socket_arg $ port_arg $ endpoints $ concurrency $ requests $ task
          $ images $ demo_images $ seed_arg $ timeout $ expect_warm $ ops)

let () =
  let info =
    Cmd.info "imageeye" ~version:"1.0.0"
      ~doc:"Batch image processing by program synthesis (PLDI 2023 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; objects_cmd; synthesize_cmd; explain_cmd; tasks_cmd; show_cmd;
            learn_cmd; sweep_cmd; apply_cmd; accuracy_cmd; report_cmd; trend_cmd; parse_cmd;
            serve_cmd; router_cmd; client_cmd; loadgen_cmd; stream_cmd;
          ]))
